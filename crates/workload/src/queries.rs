//! Report queries and their candidate execution plans.
//!
//! The centrepiece is TPC-H Query 2 with the 25-operator / 9-leaf plan of Figure 1:
//! a main join block over partsupp, part, supplier, nation and region feeding a sort
//! and LIMIT, filtered by a correlated minimum-supply-cost subquery that scans
//! partsupp, supplier, nation and region again. Operator numbers are assigned in
//! pre-order so that — as in the paper — the two partsupp leaves land on O8 and O22
//! and the only V1-resident table is read by exactly those two operators.
//!
//! Each query ships several *candidate* plans (alternative access paths / join orders)
//! so the optimizer has a real choice to make; dropping an index, changing data
//! properties or flipping a planner parameter can change the winner, which is what
//! module PD's plan-change analysis investigates.

use diads_db::{Catalog, Plan, PlanNode};

/// A named report query together with its candidate plans.
#[derive(Debug, Clone)]
pub struct ReportQuery {
    /// Query name (e.g. `TPC-H Q2`).
    pub name: String,
    /// Candidate plans for the optimizer to choose from.
    pub candidates: Vec<Plan>,
}

impl ReportQuery {
    /// The candidate with the given plan name, if any.
    pub fn candidate(&self, plan_name: &str) -> Option<&Plan> {
        self.candidates.iter().find(|p| p.name == plan_name)
    }
}

/// Leaf selectivities used by the Q2 plans, read from the catalog's data properties so
/// that bulk-DML faults shift cardinalities consistently.
fn part_selectivity(catalog: &Catalog) -> f64 {
    catalog.table("part").map(|t| t.predicate_selectivity).unwrap_or(0.01)
}

/// The Figure-1 plan for TPC-H Query 2: 25 operators, 9 leaves, partsupp read by O8 and
/// O22, part read through an index, sorted and limited output.
pub fn q2_paper_plan(catalog: &Catalog) -> Plan {
    let p_sel = part_selectivity(catalog);
    // Main block: partsupp ⋈ part ⋈ supplier ⋈ nation ⋈ region.
    let main_block = PlanNode::hash_join(
        0.2, // region filter keeps one of five regions
        PlanNode::hash_join(
            1.0,
            PlanNode::hash_join(
                0.8,
                PlanNode::hash_join(
                    0.01, // only partsupp rows whose part survives the part predicate
                    PlanNode::seq_scan("partsupp", 1.0),
                    PlanNode::hash(PlanNode::index_scan("part", "part_type_size_idx", p_sel)),
                ),
                PlanNode::hash(PlanNode::seq_scan("supplier", 1.0)),
            ),
            PlanNode::hash(PlanNode::seq_scan("nation", 1.0)),
        ),
        PlanNode::hash(PlanNode::seq_scan("region", 0.2)),
    );
    // Correlated subquery: min(ps_supplycost) over partsupp ⋈ supplier ⋈ nation ⋈ region.
    let subquery = PlanNode::aggregate(
        0.05,
        PlanNode::hash_join(
            0.2,
            PlanNode::hash_join(
                1.0,
                PlanNode::hash_join(
                    0.8,
                    PlanNode::hash(PlanNode::seq_scan("partsupp", 1.0)),
                    PlanNode::index_scan("supplier", "supplier_pkey", 1.0),
                ),
                PlanNode::seq_scan("nation", 1.0),
            ),
            PlanNode::seq_scan("region", 0.2),
        ),
    );
    let root = PlanNode::limit(0.25, PlanNode::sort(PlanNode::subplan_filter(0.01, main_block, subquery)));
    Plan::new("q2-figure1", "TPC-H Q2", root)
}

/// An alternative Q2 plan that reads `part` with a sequential scan (what the optimizer
/// falls back to when the part index is dropped or random I/O is priced out).
pub fn q2_seqscan_part_plan(catalog: &Catalog) -> Plan {
    let p_sel = part_selectivity(catalog);
    let figure1 = q2_paper_plan(catalog);
    // Rebuild with the part access path swapped; reuse the same shape otherwise.
    let main_block = PlanNode::hash_join(
        0.2,
        PlanNode::hash_join(
            1.0,
            PlanNode::hash_join(
                0.8,
                PlanNode::hash_join(
                    0.01,
                    PlanNode::seq_scan("partsupp", 1.0),
                    PlanNode::hash(PlanNode::seq_scan("part", p_sel)),
                ),
                PlanNode::hash(PlanNode::seq_scan("supplier", 1.0)),
            ),
            PlanNode::hash(PlanNode::seq_scan("nation", 1.0)),
        ),
        PlanNode::hash(PlanNode::seq_scan("region", 0.2)),
    );
    let subquery = PlanNode::aggregate(
        0.05,
        PlanNode::hash_join(
            0.2,
            PlanNode::hash_join(
                1.0,
                PlanNode::hash_join(
                    0.8,
                    PlanNode::hash(PlanNode::seq_scan("partsupp", 1.0)),
                    PlanNode::seq_scan("supplier", 1.0),
                ),
                PlanNode::seq_scan("nation", 1.0),
            ),
            PlanNode::seq_scan("region", 0.2),
        ),
    );
    let root = PlanNode::limit(0.25, PlanNode::sort(PlanNode::subplan_filter(0.01, main_block, subquery)));
    debug_assert_eq!(figure1.operator_count(), 25);
    Plan::new("q2-seqscan-part", "TPC-H Q2", root)
}

/// An alternative Q2 plan driven from the part side with nested loops into partsupp
/// through its partkey index — cheaper when the part predicate is very selective and
/// partsupp has grown large.
pub fn q2_part_driven_plan(catalog: &Catalog) -> Plan {
    let p_sel = part_selectivity(catalog);
    let main_block = PlanNode::hash_join(
        0.2,
        PlanNode::hash_join(
            1.0,
            PlanNode::hash_join(
                0.8,
                PlanNode::nested_loop(
                    1.0,
                    PlanNode::index_scan("part", "part_type_size_idx", p_sel),
                    // The partkey index has poor physical correlation on partsupp, so
                    // the probe side touches a large fraction of the heap.
                    PlanNode::index_scan("partsupp", "partsupp_partkey_idx", 0.1),
                ),
                PlanNode::hash(PlanNode::seq_scan("supplier", 1.0)),
            ),
            PlanNode::hash(PlanNode::seq_scan("nation", 1.0)),
        ),
        PlanNode::hash(PlanNode::seq_scan("region", 0.2)),
    );
    let subquery = PlanNode::aggregate(
        0.05,
        PlanNode::hash_join(
            0.2,
            PlanNode::hash_join(
                1.0,
                PlanNode::nested_loop(
                    0.8,
                    PlanNode::index_scan("partsupp", "partsupp_partkey_idx", 0.1),
                    PlanNode::index_scan("supplier", "supplier_pkey", 1.0),
                ),
                PlanNode::seq_scan("nation", 1.0),
            ),
            PlanNode::seq_scan("region", 0.2),
        ),
    );
    let root = PlanNode::limit(0.25, PlanNode::sort(PlanNode::subplan_filter(0.01, main_block, subquery)));
    Plan::new("q2-part-driven", "TPC-H Q2", root)
}

/// The candidate plans for TPC-H Q2, Figure-1 plan first.
pub fn q2_plan_candidates(catalog: &Catalog) -> Vec<Plan> {
    vec![q2_paper_plan(catalog), q2_seqscan_part_plan(catalog), q2_part_driven_plan(catalog)]
}

/// TPC-H Q1-style pricing-summary report: a full scan of lineitem feeding sort and
/// aggregation. One candidate only — there is no alternative access path.
pub fn q1_plan_candidates(_catalog: &Catalog) -> Vec<Plan> {
    let root = PlanNode::sort(PlanNode::aggregate(0.0001, PlanNode::seq_scan("lineitem", 0.98)));
    vec![Plan::new("q1-seq-aggregate", "TPC-H Q1", root)]
}

/// TPC-H Q3-style shipping-priority report: customer ⋈ orders ⋈ lineitem with a sort
/// and limit, in hash-join and index-nested-loop flavours.
pub fn q3_plan_candidates(catalog: &Catalog) -> Vec<Plan> {
    let c_sel = catalog.table("customer").map(|t| t.predicate_selectivity).unwrap_or(0.2);
    let o_sel = catalog.table("orders").map(|t| t.predicate_selectivity).unwrap_or(0.3);
    let hash_flavour = PlanNode::limit(
        0.001,
        PlanNode::sort(PlanNode::aggregate(
            0.3,
            PlanNode::hash_join(
                0.5,
                PlanNode::seq_scan("lineitem", 0.5),
                PlanNode::hash(PlanNode::hash_join(
                    o_sel,
                    PlanNode::seq_scan("orders", o_sel),
                    PlanNode::hash(PlanNode::seq_scan("customer", c_sel)),
                )),
            ),
        )),
    );
    let index_flavour = PlanNode::limit(
        0.001,
        PlanNode::sort(PlanNode::aggregate(
            0.3,
            PlanNode::nested_loop(
                0.5,
                PlanNode::nested_loop(
                    o_sel,
                    PlanNode::seq_scan("customer", c_sel),
                    PlanNode::index_scan("orders", "orders_custkey_idx", o_sel),
                ),
                PlanNode::index_scan("lineitem", "lineitem_orderkey_idx", 0.5),
            ),
        )),
    );
    vec![
        Plan::new("q3-hash-joins", "TPC-H Q3", hash_flavour),
        Plan::new("q3-index-nested-loops", "TPC-H Q3", index_flavour),
    ]
}

/// The standard report queries of the reproduction.
pub fn report_queries(catalog: &Catalog) -> Vec<ReportQuery> {
    vec![
        ReportQuery { name: "TPC-H Q2".into(), candidates: q2_plan_candidates(catalog) },
        ReportQuery { name: "TPC-H Q1".into(), candidates: q1_plan_candidates(catalog) },
        ReportQuery { name: "TPC-H Q3".into(), candidates: q3_plan_candidates(catalog) },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::{tpch_catalog, TpchLayout};
    use diads_db::{DbConfig, OperatorId, OperatorKind, Optimizer};

    fn catalog() -> Catalog {
        tpch_catalog(1.0, &TpchLayout::paper_default())
    }

    #[test]
    fn figure1_plan_has_25_operators_and_9_leaves() {
        let plan = q2_paper_plan(&catalog());
        assert_eq!(plan.operator_count(), 25);
        assert_eq!(plan.leaves().len(), 9);
    }

    #[test]
    fn partsupp_is_read_by_o8_and_o22_exactly() {
        // Figure 1 / §5: the two leaf operators connected to volume V1 are O8 and O22;
        // the other seven leaves read V2-resident tables.
        let cat = catalog();
        let plan = q2_paper_plan(&cat);
        let partsupp_leaves: Vec<u32> =
            plan.leaves().iter().filter(|n| n.table.as_deref() == Some("partsupp")).map(|n| n.id.0).collect();
        assert_eq!(partsupp_leaves, vec![8, 22]);
        let v2_leaves = plan
            .leaves()
            .iter()
            .filter(|n| cat.volume_of_table(n.table.as_deref().unwrap()).as_deref() == Some("V2"))
            .count();
        assert_eq!(v2_leaves, 7);
    }

    #[test]
    fn figure1_plan_reads_part_through_an_index() {
        let plan = q2_paper_plan(&catalog());
        let part_leaf = plan.leaves().into_iter().find(|n| n.table.as_deref() == Some("part")).unwrap();
        assert_eq!(part_leaf.kind, OperatorKind::IndexScan);
        assert_eq!(part_leaf.index.as_deref(), Some("part_type_size_idx"));
    }

    #[test]
    fn o17_is_the_subquery_aggregate() {
        let plan = q2_paper_plan(&catalog());
        assert_eq!(plan.operator(OperatorId(17)).unwrap().kind, OperatorKind::Aggregate);
        // O3 joins the main block with the subquery.
        assert_eq!(plan.operator(OperatorId(3)).unwrap().kind, OperatorKind::SubPlanFilter);
        // The subquery aggregate's subtree contains the second partsupp scan (O22).
        assert!(plan.subtree_of(OperatorId(17)).contains(&OperatorId(22)));
    }

    #[test]
    fn candidate_plans_are_structurally_distinct() {
        let cat = catalog();
        let candidates = q2_plan_candidates(&cat);
        assert_eq!(candidates.len(), 3);
        let mut fingerprints: Vec<String> = candidates.iter().map(|p| p.fingerprint()).collect();
        fingerprints.sort();
        fingerprints.dedup();
        assert_eq!(fingerprints.len(), 3);
        assert!(candidates.iter().all(|p| p.query == "TPC-H Q2"));
    }

    #[test]
    fn optimizer_prefers_the_figure1_plan_by_default() {
        let cat = catalog();
        let optimizer = Optimizer::new(DbConfig::paper_default());
        let choice = optimizer.choose(&q2_plan_candidates(&cat), &cat).unwrap();
        assert_eq!(choice.plan.name, "q2-figure1");
    }

    #[test]
    fn dropping_the_part_index_changes_the_chosen_plan() {
        let mut cat = catalog();
        let optimizer = Optimizer::new(DbConfig::paper_default());
        cat.drop_index("part_type_size_idx").unwrap();
        let choice = optimizer.choose(&q2_plan_candidates(&cat), &cat).unwrap();
        assert_ne!(choice.plan.name, "q2-figure1");
        // The surviving plan has a different fingerprint than the paper plan.
        assert_ne!(choice.plan.fingerprint(), q2_paper_plan(&cat).fingerprint());
    }

    #[test]
    fn other_report_queries_are_available() {
        let cat = catalog();
        let queries = report_queries(&cat);
        assert_eq!(queries.len(), 3);
        assert_eq!(q1_plan_candidates(&cat).len(), 1);
        assert_eq!(q3_plan_candidates(&cat).len(), 2);
        let q3 = &queries[2];
        assert!(q3.candidate("q3-hash-joins").is_some());
        assert!(q3.candidate("missing").is_none());
        // Every candidate of every query is feasible against the full catalog.
        let optimizer = Optimizer::new(DbConfig::paper_default());
        for q in &queries {
            for p in &q.candidates {
                assert!(optimizer.is_feasible(p, &cat), "{} not feasible", p.name);
            }
        }
    }
}
