//! # diads-workload
//!
//! The workload layer of the DIADS reproduction (*"Why Did My Query Slow Down?"*,
//! CIDR 2009): a TPC-H-like schema laid out over the paper's two volumes, the
//! 25-operator / 9-leaf execution plan of Figure 1 for TPC-H Query 2 (plus alternative
//! plans the optimizer can fall back to), a couple of companion report queries, and the
//! periodic report-generation schedule that produces the satisfactory/unsatisfactory
//! run history DIADS diagnoses.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod queries;
pub mod runner;
pub mod tpch;

pub use queries::{q1_plan_candidates, q2_plan_candidates, q3_plan_candidates, ReportQuery};
pub use runner::{periodic_schedule, ReportWorkload};
pub use tpch::{tpch_catalog, TpchLayout};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_compose() {
        let catalog = tpch_catalog(1.0, &TpchLayout::paper_default());
        let candidates = q2_plan_candidates(&catalog);
        assert!(!candidates.is_empty());
        let schedule =
            periodic_schedule(diads_monitor::Timestamp::new(0), diads_monitor::Duration::from_hours(2), 3);
        assert_eq!(schedule.len(), 3);
    }
}
