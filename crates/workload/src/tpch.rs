//! The TPC-H-like schema and its layout over the SAN volumes of the Figure-1 testbed.
//!
//! The paper's testbed stores the TPC-H tables in two Ext3 file-system volumes V1 and
//! V2. Figure 1 shows that the two leaf operators reading V1 are the two partsupp
//! scans while the remaining seven leaves read V2, so the reproduction's default layout
//! places `partsupp` on V1 and every other table on V2.

use diads_db::{Catalog, Index, StorageKind, Table, Tablespace};

/// How the TPC-H tables are laid out over tablespaces and SAN volumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpchLayout {
    /// Volume backing the `partsupp` tablespace.
    pub partsupp_volume: String,
    /// Volume backing every other table's tablespace.
    pub default_volume: String,
    /// SMS or DMS binding for both tablespaces.
    pub storage: StorageKind,
}

impl TpchLayout {
    /// The paper's layout: partsupp on V1, everything else on V2, SMS (Ext3 file systems).
    pub fn paper_default() -> Self {
        TpchLayout {
            partsupp_volume: "V1".to_string(),
            default_volume: "V2".to_string(),
            storage: StorageKind::SystemManaged,
        }
    }
}

/// Base row counts at scale factor 1.0, `(table, rows, avg_row_bytes, selectivity, clustering)`.
///
/// The selectivity column is the fraction of the table a "typical" report predicate
/// keeps (used when plan builders set leaf selectivities); clustering describes how
/// well indexes correlate with physical order.
const BASE_TABLES: &[(&str, u64, u32, f64, f64)] = &[
    ("region", 5, 124, 0.2, 1.0),
    ("nation", 25, 128, 1.0, 1.0),
    ("supplier", 10_000, 159, 1.0, 0.9),
    ("customer", 150_000, 179, 0.2, 0.9),
    ("part", 200_000, 155, 0.01, 0.9),
    ("partsupp", 800_000, 144, 1.0, 0.6),
    ("orders", 1_500_000, 121, 0.3, 0.95),
    ("lineitem", 6_000_000, 129, 0.98, 0.95),
];

/// Builds the TPC-H catalog at the given scale factor with the given volume layout.
///
/// Scale factors below 0.01 are clamped up so every table keeps at least a handful of
/// rows. The fixed-size tables (`region`, `nation`) do not scale, as in TPC-H.
pub fn tpch_catalog(scale_factor: f64, layout: &TpchLayout) -> Catalog {
    let sf = scale_factor.max(0.01);
    let mut catalog = Catalog::new();
    catalog
        .add_tablespace(Tablespace {
            name: "ts_partsupp".into(),
            volume: layout.partsupp_volume.clone(),
            storage: layout.storage,
        })
        .expect("fresh catalog");
    catalog
        .add_tablespace(Tablespace {
            name: "ts_main".into(),
            volume: layout.default_volume.clone(),
            storage: layout.storage,
        })
        .expect("fresh catalog");

    for &(name, rows, width, selectivity, clustering) in BASE_TABLES {
        let scaled_rows =
            if name == "region" || name == "nation" { rows } else { ((rows as f64) * sf).round() as u64 };
        let tablespace = if name == "partsupp" { "ts_partsupp" } else { "ts_main" };
        catalog
            .add_table(Table {
                name: name.into(),
                tablespace: tablespace.into(),
                row_count: scaled_rows.max(1),
                avg_row_bytes: width,
                predicate_selectivity: selectivity,
                clustering,
            })
            .expect("unique table names");
    }

    for (index, table, column, unique) in [
        ("part_pkey", "part", "p_partkey", true),
        ("part_type_size_idx", "part", "(p_type, p_size)", false),
        ("supplier_pkey", "supplier", "s_suppkey", true),
        ("partsupp_pkey", "partsupp", "(ps_partkey, ps_suppkey)", true),
        ("partsupp_partkey_idx", "partsupp", "ps_partkey", false),
        ("customer_pkey", "customer", "c_custkey", true),
        ("orders_pkey", "orders", "o_orderkey", true),
        ("orders_custkey_idx", "orders", "o_custkey", false),
        ("lineitem_orderkey_idx", "lineitem", "l_orderkey", false),
        ("nation_pkey", "nation", "n_nationkey", true),
        ("region_pkey", "region", "r_regionkey", true),
    ] {
        catalog
            .add_index(Index { name: index.into(), table: table.into(), column: column.into(), unique })
            .expect("unique index names");
    }
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_splits_partsupp_from_the_rest() {
        let cat = tpch_catalog(1.0, &TpchLayout::paper_default());
        assert_eq!(cat.volume_of_table("partsupp").unwrap(), "V1");
        for t in ["part", "supplier", "nation", "region", "customer", "orders", "lineitem"] {
            assert_eq!(cat.volume_of_table(t).unwrap(), "V2", "{t}");
        }
        assert_eq!(cat.tables_on_volume("V1"), vec!["partsupp"]);
        assert_eq!(cat.tables_on_volume("V2").len(), 7);
    }

    #[test]
    fn scale_factor_scales_variable_tables_only() {
        let sf1 = tpch_catalog(1.0, &TpchLayout::paper_default());
        let sf10 = tpch_catalog(10.0, &TpchLayout::paper_default());
        assert_eq!(sf1.table("nation").unwrap().row_count, 25);
        assert_eq!(sf10.table("nation").unwrap().row_count, 25);
        assert_eq!(sf1.table("region").unwrap().row_count, 5);
        assert_eq!(sf10.table("partsupp").unwrap().row_count, 8_000_000);
        assert_eq!(sf10.table("lineitem").unwrap().row_count, 60_000_000);
        assert_eq!(sf1.table("part").unwrap().row_count, 200_000);
    }

    #[test]
    fn tiny_scale_factor_keeps_rows_positive() {
        let cat = tpch_catalog(0.0, &TpchLayout::paper_default());
        for name in cat.table_names() {
            assert!(cat.table(&name).unwrap().row_count >= 1, "{name}");
        }
    }

    #[test]
    fn expected_indexes_exist() {
        let cat = tpch_catalog(1.0, &TpchLayout::paper_default());
        for idx in ["part_pkey", "part_type_size_idx", "supplier_pkey", "partsupp_pkey", "nation_pkey"] {
            assert!(cat.index(idx).is_some(), "{idx}");
        }
        assert!(cat.has_index_on("part"));
        assert!(cat.has_index_on("partsupp"));
        assert_eq!(cat.index_names().len(), 11);
    }

    #[test]
    fn custom_layout_is_respected() {
        let layout = TpchLayout {
            partsupp_volume: "VOL-A".into(),
            default_volume: "VOL-B".into(),
            storage: StorageKind::DatabaseManaged,
        };
        let cat = tpch_catalog(1.0, &layout);
        assert_eq!(cat.volume_of_table("partsupp").unwrap(), "VOL-A");
        assert_eq!(cat.volume_of_table("orders").unwrap(), "VOL-B");
        assert_eq!(cat.tablespace("ts_partsupp").unwrap().storage, StorageKind::DatabaseManaged);
    }
}
