//! The periodic report-generation schedule.
//!
//! The paper's motivating setting is a query "executed multiple times (e.g., in a
//! periodic report-generation setting)": the same report runs every couple of hours,
//! some runs are satisfactory, later ones are not, and DIADS diagnoses the difference.
//! This module produces those run start times and bundles a query with its cadence.

use diads_db::Plan;
use diads_monitor::{Duration, Timestamp};

use crate::queries::ReportQuery;

/// Start times of `count` periodic runs beginning at `start`, one every `interval`.
pub fn periodic_schedule(start: Timestamp, interval: Duration, count: usize) -> Vec<Timestamp> {
    (0..count).map(|i| start.plus(interval.scale(i as f64))).collect()
}

/// A report query plus the cadence it is executed on.
#[derive(Debug, Clone)]
pub struct ReportWorkload {
    /// The query and its candidate plans.
    pub query: ReportQuery,
    /// Time of the first run.
    pub first_run: Timestamp,
    /// Interval between consecutive runs.
    pub interval: Duration,
    /// Total number of runs.
    pub runs: usize,
}

impl ReportWorkload {
    /// Creates a workload description.
    pub fn new(query: ReportQuery, first_run: Timestamp, interval: Duration, runs: usize) -> Self {
        ReportWorkload { query, first_run, interval, runs }
    }

    /// The start times of every run.
    pub fn schedule(&self) -> Vec<Timestamp> {
        periodic_schedule(self.first_run, self.interval, self.runs)
    }

    /// The time of the last scheduled run.
    pub fn last_run(&self) -> Timestamp {
        self.schedule().last().copied().unwrap_or(self.first_run)
    }

    /// The candidate plans of the query.
    pub fn candidates(&self) -> &[Plan] {
        &self.query.candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::q2_plan_candidates;
    use crate::tpch::{tpch_catalog, TpchLayout};

    #[test]
    fn schedule_is_evenly_spaced() {
        let s = periodic_schedule(Timestamp::new(100), Duration::from_hours(2), 4);
        assert_eq!(
            s.iter().map(|t| t.as_secs()).collect::<Vec<_>>(),
            vec![100, 100 + 7200, 100 + 14_400, 100 + 21_600]
        );
        assert!(periodic_schedule(Timestamp::new(0), Duration::from_mins(1), 0).is_empty());
    }

    #[test]
    fn workload_bundles_query_and_cadence() {
        let catalog = tpch_catalog(1.0, &TpchLayout::paper_default());
        let query = ReportQuery { name: "TPC-H Q2".into(), candidates: q2_plan_candidates(&catalog) };
        let w = ReportWorkload::new(query, Timestamp::new(3_600), Duration::from_hours(2), 10);
        assert_eq!(w.schedule().len(), 10);
        assert_eq!(w.last_run(), Timestamp::new(3_600 + 9 * 7_200));
        assert_eq!(w.candidates().len(), 3);
    }

    #[test]
    fn empty_workload_last_run_is_first_run() {
        let catalog = tpch_catalog(1.0, &TpchLayout::paper_default());
        let query = ReportQuery { name: "TPC-H Q2".into(), candidates: q2_plan_candidates(&catalog) };
        let w = ReportWorkload::new(query, Timestamp::new(50), Duration::from_hours(1), 0);
        assert_eq!(w.last_run(), Timestamp::new(50));
    }
}
