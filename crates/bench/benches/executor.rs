//! Criterion benchmark: planning and executing the Figure-1 TPC-H Q2 plan on the
//! simulated database + SAN (one report run).

use diads_bench::microbench::Criterion;
use diads_bench::{criterion_group, criterion_main};
use diads_core::Testbed;
use diads_db::Optimizer;
use diads_monitor::Timestamp;
use std::hint::black_box;

fn bench_executor(c: &mut Criterion) {
    let testbed = Testbed::paper_default(10.0);
    let mut group = c.benchmark_group("executor");
    group.sample_size(30);
    group.bench_function("optimizer_choose_q2", |b| {
        let optimizer = Optimizer::new(testbed.config.clone());
        b.iter(|| black_box(optimizer.choose(&testbed.query.candidates, &testbed.catalog).expect("feasible")))
    });
    group.bench_function("execute_q2_once", |b| {
        b.iter(|| black_box(testbed.execute_once(black_box(Timestamp::new(3_600))).expect("runs")))
    });
    group.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
