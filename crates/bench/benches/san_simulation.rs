//! Criterion benchmark: the SAN performance engine (response-time evaluation and
//! metric recording over the Figure-1 topology).

use diads_bench::microbench::Criterion;
use diads_bench::{criterion_group, criterion_main};
use diads_monitor::noise::NoiseModel;
use diads_monitor::{Duration, IntervalSampler, MetricStore, TimeRange, Timestamp};
use diads_san::topology::paper_testbed;
use diads_san::workload::{ExternalWorkload, IoProfile};
use diads_san::SanSimulator;
use std::hint::black_box;

fn bench_san(c: &mut Criterion) {
    let mut sim = SanSimulator::new(paper_testbed());
    sim.add_workload(ExternalWorkload::steady(
        "app-load",
        "app-server",
        "V3",
        IoProfile::oltp(120.0, 60.0),
        TimeRange::new(Timestamp::ZERO, Timestamp::new(1_000_000)),
    ))
    .expect("volume exists");

    let mut group = c.benchmark_group("san");
    group.sample_size(30);
    group.bench_function("volume_response", |b| {
        b.iter(|| black_box(sim.volume_response(black_box("V1"), Timestamp::new(5_000), &[])))
    });
    group.bench_function("record_metrics_1h", |b| {
        b.iter(|| {
            let mut sampler = IntervalSampler::new(Duration::from_mins(5), NoiseModel::None, 1);
            let mut store = MetricStore::new();
            sim.record_metrics(
                TimeRange::new(Timestamp::ZERO, Timestamp::new(3_600)),
                &[],
                &mut sampler,
                &mut store,
            );
            sampler.flush(&mut store);
            black_box(store.point_count())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_san);
criterion_main!(benches);
