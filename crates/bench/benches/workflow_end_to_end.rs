//! Criterion benchmark: the full diagnosis workflow (Figure 2) in batch mode over a
//! pre-simulated scenario-1 deployment, plus the individual modules.

use diads_bench::harness::diagnose;
use diads_bench::microbench::Criterion;
use diads_bench::{criterion_group, criterion_main};
use diads_core::workflow::DiagnosisCache;
use diads_core::{DiagnosisContext, DiagnosisWorkflow, Testbed};
use diads_inject::scenarios::{scenario_1, ScenarioTimeline};
use std::hint::black_box;

fn bench_workflow(c: &mut Criterion) {
    let outcome = Testbed::run_scenario(&scenario_1(ScenarioTimeline::short()));
    let apg = outcome.apg();
    let events = outcome.testbed.all_events();
    let ctx = DiagnosisContext {
        apg: &apg,
        history: &outcome.history,
        store: &outcome.testbed.store,
        events: &events,
        catalog: &outcome.testbed.catalog,
        config: &outcome.testbed.config,
        topology: outcome.testbed.san.topology(),
        workloads: outcome.testbed.san.workloads(),
    };
    let workflow = DiagnosisWorkflow::new();

    let mut group = c.benchmark_group("workflow");
    group.sample_size(20);
    group.bench_function("batch_diagnosis", |b| b.iter(|| black_box(workflow.run(black_box(&ctx)))));
    group.bench_function("batch_diagnosis_refit_baseline", |b| {
        b.iter(|| {
            let mut cache = DiagnosisCache::disabled();
            black_box(workflow.run_with_cache(black_box(&ctx), &mut cache))
        })
    });
    group.bench_function("batch_diagnosis_warm_cache", |b| {
        let mut cache = DiagnosisCache::new();
        b.iter(|| black_box(workflow.run_with_cache(black_box(&ctx), &mut cache)))
    });
    group.bench_function("module_co", |b| {
        b.iter(|| black_box(workflow.correlated_operators(&ctx, &mut DiagnosisCache::new())))
    });
    let cos = workflow.correlated_operators(&ctx, &mut DiagnosisCache::new());
    group.bench_function("module_da", |b| {
        b.iter(|| black_box(workflow.dependency_analysis(&ctx, &cos, &mut DiagnosisCache::new())))
    });
    group.bench_function("module_da_refit_baseline", |b| {
        b.iter(|| {
            let mut cache = DiagnosisCache::disabled();
            black_box(workflow.dependency_analysis_sequential(&ctx, &cos, &mut cache))
        })
    });
    group.bench_function("module_da_warm_cache", |b| {
        let mut cache = DiagnosisCache::new();
        b.iter(|| black_box(workflow.dependency_analysis_sequential(&ctx, &cos, &mut cache)))
    });
    group.bench_function("diagnose_helper", |b| b.iter(|| black_box(diagnose(&outcome))));
    group.finish();
}

criterion_group!(benches, bench_workflow);
criterion_main!(benches);
