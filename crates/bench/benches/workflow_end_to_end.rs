//! Criterion benchmark: the full diagnosis workflow (Figure 2) in batch mode over a
//! pre-simulated scenario-1 deployment, plus the individual modules.

use criterion::{criterion_group, criterion_main, Criterion};
use diads_bench::harness::diagnose;
use diads_core::{DiagnosisContext, DiagnosisWorkflow, Testbed};
use diads_inject::scenarios::{scenario_1, ScenarioTimeline};
use std::hint::black_box;

fn bench_workflow(c: &mut Criterion) {
    let outcome = Testbed::run_scenario(&scenario_1(ScenarioTimeline::short()));
    let apg = outcome.apg();
    let events = outcome.testbed.all_events();
    let ctx = DiagnosisContext {
        apg: &apg,
        history: &outcome.history,
        store: &outcome.testbed.store,
        events: &events,
        catalog: &outcome.testbed.catalog,
        config: &outcome.testbed.config,
        topology: outcome.testbed.san.topology(),
        workloads: outcome.testbed.san.workloads(),
    };
    let workflow = DiagnosisWorkflow::new();

    let mut group = c.benchmark_group("workflow");
    group.sample_size(20);
    group.bench_function("batch_diagnosis", |b| b.iter(|| black_box(workflow.run(black_box(&ctx)))));
    group.bench_function("module_co", |b| b.iter(|| black_box(workflow.correlated_operators(&ctx))));
    let cos = workflow.correlated_operators(&ctx);
    group.bench_function("module_da", |b| b.iter(|| black_box(workflow.dependency_analysis(&ctx, &cos))));
    group.bench_function("diagnose_helper", |b| b.iter(|| black_box(diagnose(&outcome))));
    group.finish();
}

criterion_group!(benches, bench_workflow);
criterion_main!(benches);
