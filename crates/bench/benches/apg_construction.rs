//! Criterion benchmark: Annotated Plan Graph construction for the Figure-1 plan
//! (Section 3.1's end-to-end mapping).

use diads_bench::microbench::Criterion;
use diads_bench::{criterion_group, criterion_main};
use diads_core::Testbed;
use std::hint::black_box;

fn bench_apg(c: &mut Criterion) {
    let testbed = Testbed::paper_default(10.0);
    let plan = testbed.query.candidates[0].clone();
    let mut group = c.benchmark_group("apg");
    group.sample_size(30);
    group.bench_function("build_figure1_apg", |b| b.iter(|| black_box(testbed.build_apg(black_box(&plan)))));
    let apg = testbed.build_apg(&plan);
    group.bench_function("dependency_search_space", |b| {
        let ops: Vec<_> = apg.plan.operators().iter().map(|o| o.id).collect();
        b.iter(|| black_box(apg.components_on_paths(black_box(&ops))))
    });
    group.bench_function("render", |b| b.iter(|| black_box(apg.render())));
    group.finish();
}

criterion_group!(benches, bench_apg);
criterion_main!(benches);
