//! Criterion benchmark: KDE fitting and anomaly scoring (the statistical core of
//! modules CO, DA and CR).

use diads_bench::hotpath;
use diads_bench::microbench::{BenchmarkId, Criterion};
use diads_bench::{criterion_group, criterion_main};
use diads_stats::{Kde, ScoringCache};
use std::hint::black_box;

fn bench_kde(c: &mut Criterion) {
    let mut group = c.benchmark_group("kde");
    group.sample_size(30);
    for &n in &[10usize, 30, 100, 300] {
        let sample: Vec<f64> = (0..n).map(|i| 100.0 + (i % 17) as f64 * 0.8).collect();
        group.bench_with_input(BenchmarkId::new("fit", n), &sample, |b, s| {
            b.iter(|| Kde::fit(black_box(s)).expect("valid sample"))
        });
        let kde = Kde::fit(&sample).expect("valid sample");
        group.bench_with_input(BenchmarkId::new("anomaly_score", n), &kde, |b, k| {
            b.iter(|| black_box(k.anomaly_score(black_box(140.0))))
        });
    }
    group.finish();
}

/// The refit-vs-cache comparison behind the zero-copy scoring engine (the same
/// workload `bench_diads` tracks in `BENCH_diads.json` — defined once in
/// `diads_bench::hotpath`).
fn bench_repeated_scoring(c: &mut Criterion) {
    let sample = hotpath::kde_sample();
    let observations = hotpath::kde_observations();

    let mut group = c.benchmark_group("kde_repeated");
    group.sample_size(30);
    group.bench_function("refit_per_score", |b| {
        b.iter(|| black_box(hotpath::refit_per_score(black_box(&sample), &observations)))
    });
    group.bench_function("fit_once_score_many", |b| {
        let mut cache: ScoringCache<u32> = ScoringCache::new();
        let mut out = Vec::new();
        b.iter(|| {
            black_box(hotpath::cached_score_many(&mut cache, &mut out, &sample, black_box(&observations)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kde, bench_repeated_scoring);
criterion_main!(benches);
