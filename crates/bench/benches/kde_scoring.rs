//! Criterion benchmark: KDE fitting and anomaly scoring (the statistical core of
//! modules CO, DA and CR).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diads_stats::Kde;
use std::hint::black_box;

fn bench_kde(c: &mut Criterion) {
    let mut group = c.benchmark_group("kde");
    group.sample_size(30);
    for &n in &[10usize, 30, 100, 300] {
        let sample: Vec<f64> = (0..n).map(|i| 100.0 + (i % 17) as f64 * 0.8).collect();
        group.bench_with_input(BenchmarkId::new("fit", n), &sample, |b, s| {
            b.iter(|| Kde::fit(black_box(s)).expect("valid sample"))
        });
        let kde = Kde::fit(&sample).expect("valid sample");
        group.bench_with_input(BenchmarkId::new("anomaly_score", n), &kde, |b, k| {
            b.iter(|| black_box(k.anomaly_score(black_box(140.0))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kde);
criterion_main!(benches);
