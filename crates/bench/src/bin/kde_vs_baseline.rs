//! Regenerates the **Section-5 observation** about the statistical engine: "compared to
//! correlation analysis using advanced models (e.g., Bayesian networks), KDE can
//! produce accurate results with few tens of samples, and is more robust to noise in
//! the data."
//!
//! A synthetic anomaly-labelling task sweeps the number of satisfactory samples and the
//! noise level: each detector must separate genuinely slowed-down observations
//! (+60 % shift) from normal ones. The Gaussian naive-Bayes classifier plays the role
//! of the parametric "advanced model"; the z-score and fixed-percentile detectors are
//! the simpler alternatives.
//!
//! Run with `cargo run --release -p diads-bench --bin kde_vs_baseline`.

use diads_bench::harness::heading;
use diads_monitor::rng::SplitMix64;
use diads_stats::bayes::RunLabel;
use diads_stats::{AnomalyDetector, GaussianNaiveBayes, KdeDetector, PercentileDetector, ZScoreDetector};

fn normal(rng: &mut SplitMix64, mean: f64, sd: f64) -> f64 {
    rng.next_normal(mean, sd)
}

/// One trial: accuracy of each detector at separating shifted from unshifted
/// observations given `n` satisfactory samples and a noise-spike probability.
fn trial(rng: &mut SplitMix64, n: usize, spike_prob: f64) -> (f64, f64, f64, f64) {
    let base = 100.0;
    let sd = 8.0;
    let gen_sample = |rng: &mut SplitMix64| {
        let v = normal(rng, base, sd).max(0.0);
        if rng.next_f64() < spike_prob {
            v * 4.0
        } else {
            v
        }
    };
    let satisfactory: Vec<f64> = (0..n).map(|_| gen_sample(rng)).collect();

    let mut kde = KdeDetector::new();
    let mut z = ZScoreDetector::new();
    let mut pct = PercentileDetector::new(0.95);
    kde.fit(&satisfactory).expect("non-empty");
    z.fit(&satisfactory).expect("non-empty");
    pct.fit(&satisfactory).expect("non-empty");

    // The "advanced model" additionally needs labelled unsatisfactory examples; give it
    // a handful, as a real deployment would have.
    let mut rows: Vec<(Vec<f64>, RunLabel)> =
        satisfactory.iter().map(|&v| (vec![v], RunLabel::Satisfactory)).collect();
    for _ in 0..4 {
        rows.push((vec![gen_sample(rng) * 1.6], RunLabel::Unsatisfactory));
    }
    let nb = GaussianNaiveBayes::fit(&rows).expect("both classes present");

    let trials = 200;
    let mut correct = [0usize; 4];
    for i in 0..trials {
        let anomalous = i % 2 == 0;
        let value = if anomalous { normal(rng, base * 1.6, sd) } else { gen_sample(rng) };
        let verdicts = [
            kde.score(value) >= 0.8,
            z.score(value) >= 0.8,
            pct.score(value) >= 0.8,
            nb.prob_unsatisfactory(&[value]).unwrap_or(0.0) >= 0.5,
        ];
        for (j, v) in verdicts.iter().enumerate() {
            if *v == anomalous {
                correct[j] += 1;
            }
        }
    }
    let acc = |c: usize| c as f64 / trials as f64;
    (acc(correct[0]), acc(correct[1]), acc(correct[2]), acc(correct[3]))
}

fn sweep(label: &str, spike_prob: f64) {
    heading(&format!("Detection accuracy vs. sample count ({label})"));
    println!("{:>8} {:>8} {:>8} {:>12} {:>14}", "samples", "KDE", "z-score", "95th-pctile", "naive Bayes");
    for &n in &[10usize, 20, 30, 50, 80] {
        let mut sums = (0.0, 0.0, 0.0, 0.0);
        let reps = 20;
        for rep in 0..reps {
            let mut rng = SplitMix64::new(1000 + rep as u64 * 7 + n as u64);
            let (a, b, c, d) = trial(&mut rng, n, spike_prob);
            sums = (sums.0 + a, sums.1 + b, sums.2 + c, sums.3 + d);
        }
        let r = reps as f64;
        println!(
            "{:>8} {:>8.3} {:>8.3} {:>12.3} {:>14.3}",
            n,
            sums.0 / r,
            sums.1 / r,
            sums.2 / r,
            sums.3 / r
        );
    }
}

fn main() {
    sweep("clean monitoring data", 0.0);
    sweep("noisy monitoring data: 10% spurious spikes", 0.10);
    println!("\nExpected shape (paper, §5): KDE is accurate with a few tens of samples and degrades");
    println!("less than the parametric alternatives when the training data contains noise spikes.");
}
