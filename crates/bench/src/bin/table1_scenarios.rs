//! Regenerates **Table 1**: the five problem-injection scenarios, the verdict DIADS
//! reaches for each, the critical module the paper attributes the result to, and — for
//! the Section-5 discussion — what the SAN-only and DB-only silo tools would have said.
//!
//! Run with `cargo run --release -p diads-bench --bin table1_scenarios`.

use diads_bench::harness::{diagnose, heading};
use diads_core::baseline::{DbOnlyTool, SanOnlyTool};
use diads_core::{ConfidenceLevel, DiagnosisContext, Testbed};
use diads_inject::scenarios::{scenario_1, scenario_2, scenario_3, scenario_4, scenario_5, ScenarioTimeline};

fn main() {
    let timeline = ScenarioTimeline::paper_default();
    let scenarios = [
        scenario_1(timeline),
        scenario_2(timeline),
        scenario_3(timeline),
        scenario_4(timeline),
        scenario_5(timeline),
    ];

    heading("Table 1: problem scenarios of increasing complexity");
    for (i, scenario) in scenarios.iter().enumerate() {
        let outcome = Testbed::run_scenario(scenario);
        let report = diagnose(&outcome);

        println!("\n--- Scenario {} ({}) ---", i + 1, scenario.id);
        println!("Problem: {}", scenario.name);
        println!("Critical role of DIADS modules (paper): {}", scenario.critical_modules);
        println!(
            "Observed slowdown: {:.0}s -> {:.0}s ({:+.0}%)",
            report.satisfactory_mean_secs,
            report.unsatisfactory_mean_secs,
            report.relative_slowdown() * 100.0
        );
        println!("DIADS verdict (confidence, impact):");
        for cause in report.causes.iter().filter(|c| c.confidence != ConfidenceLevel::Low) {
            println!(
                "    [{:<6}] {:>5.1}% conf, {:>5.1}% impact  {}",
                cause.confidence.label(),
                cause.confidence_score,
                cause.impact_pct,
                cause.cause_id
            );
        }
        let expected_found =
            scenario.expected.primary_causes.iter().all(|e| {
                report.causes.iter().any(|c| &c.cause_id == e && c.confidence == ConfidenceLevel::High)
            });
        println!(
            "Expected root cause(s) identified with high confidence: {}",
            if expected_found { "YES" } else { "NO" }
        );

        // Silo-tool comparison (Section 5 discussion).
        let apg = outcome.apg();
        let events = outcome.testbed.all_events();
        let ctx = DiagnosisContext {
            apg: &apg,
            history: &outcome.history,
            store: &outcome.testbed.store,
            events: &events,
            catalog: &outcome.testbed.catalog,
            config: &outcome.testbed.config,
            topology: outcome.testbed.san.topology(),
            workloads: outcome.testbed.san.workloads(),
        };
        let san_only = SanOnlyTool::new().diagnose(&ctx);
        let db_only = DbOnlyTool::new().diagnose(&ctx);
        println!("SAN-only tool would report:");
        for f in san_only.iter().take(3) {
            println!("    {}", f.description);
        }
        println!("DB-only tool would report:");
        for f in db_only.iter().take(3) {
            println!("    {}", f.description);
        }
    }
}
