//! Regenerates **Table 2**: the anomaly scores dependency analysis computes for the
//! write metrics of volumes V1 and V2, without and with the bursty extra load on V2.
//!
//! The paper reports the `writeIO` and `writeTime` counters of the two volumes; the
//! simulated controller exposes the same counters at both the volume (front-end) and
//! pool (back-end) level, and the table prints both so the contention on V1's spindles
//! (pool P1, caused by the interloper volume V') is visible exactly where it physically
//! happens. See EXPERIMENTS.md for the paper-vs-measured comparison.
//!
//! Run with `cargo run --release -p diads-bench --bin table2_anomaly_scores`.

use diads_bench::harness::heading;
use diads_core::{DiagnosisCache, DiagnosisContext, DiagnosisWorkflow, Testbed};
use diads_inject::scenarios::{scenario_1, scenario_1b, ScenarioTimeline};
use diads_monitor::{ComponentId, MetricName};

fn scores_for(scenario: &diads_inject::Scenario) -> Vec<((&'static str, &'static str), f64)> {
    let outcome = Testbed::run_scenario(scenario);
    let apg = outcome.apg();
    let events = outcome.testbed.all_events();
    let ctx = DiagnosisContext {
        apg: &apg,
        history: &outcome.history,
        store: &outcome.testbed.store,
        events: &events,
        catalog: &outcome.testbed.catalog,
        config: &outcome.testbed.config,
        topology: outcome.testbed.san.topology(),
        workloads: outcome.testbed.san.workloads(),
    };
    let workflow = DiagnosisWorkflow::new();
    let mut cache = DiagnosisCache::new();
    let cos = workflow.correlated_operators(&ctx, &mut cache);
    // Score every component (pruning off) so both volumes appear even when only one is
    // on the correlated operators' paths.
    let mut unpruned = DiagnosisWorkflow::new();
    unpruned.config.prune_by_dependency_paths = false;
    let da = unpruned.dependency_analysis(&ctx, &cos, &mut cache);

    let rows = [
        (("V1 (volume)", "writeIO"), ComponentId::volume("V1"), MetricName::WriteIo),
        (("V1 (volume)", "writeTime"), ComponentId::volume("V1"), MetricName::WriteTime),
        (("V1 (pool P1)", "writeIO"), ComponentId::pool("P1"), MetricName::WriteIo),
        (("V1 (pool P1)", "writeTime"), ComponentId::pool("P1"), MetricName::WriteTime),
        (("V2 (volume)", "writeIO"), ComponentId::volume("V2"), MetricName::WriteIo),
        (("V2 (volume)", "writeTime"), ComponentId::volume("V2"), MetricName::WriteTime),
        (("V2 (pool P2)", "writeIO"), ComponentId::pool("P2"), MetricName::WriteIo),
        (("V2 (pool P2)", "writeTime"), ComponentId::pool("P2"), MetricName::WriteTime),
    ];
    rows.iter()
        .map(|(label, component, metric)| (*label, da.score_of(component, metric).unwrap_or(f64::NAN)))
        .collect()
}

fn main() {
    let timeline = ScenarioTimeline::paper_default();
    let without_v2 = scores_for(&scenario_1(timeline));
    let with_v2 = scores_for(&scenario_1b(timeline));

    heading("Table 2: anomaly scores from dependency analysis (volumes V1 and V2)");
    println!(
        "{:<18} {:<10} {:>28} {:>28}",
        "Volume", "Metric", "Anomaly (no contention in V2)", "Anomaly (contention in V2)"
    );
    for (a, b) in without_v2.iter().zip(&with_v2) {
        println!("{:<18} {:<10} {:>28.3} {:>28.3}", a.0 .0, a.0 .1, a.1, b.1);
    }
    println!("\nPaper's Table 2 for reference:");
    println!("  V1 writeIO  0.894 / 0.894     V1 writeTime 0.823 / 0.823");
    println!("  V2 writeIO  0.063 / 0.512     V2 writeTime 0.479 / 0.879");
}
