//! Fleet-scale load harness: T tenant threads drive K independent testbeds
//! through continuous record → seal → diagnose_incremental → plan cycles against
//! ONE shared lock-striped [`DiagnosisEngine`], reporting what a mean would hide —
//! the diagnosis latency *spectrum* (p50/p99/p999 via
//! [`diads_stats::LatencySpectrum`]), sustained ingestion throughput through the
//! batched sharded writer, the engine's warm-hit rate, and eviction counts. Both a
//! 1-thread and an N-thread column land in `BENCH_diads.json` (group `fleet`);
//! on a single-core host the N-thread numbers are a correctness-under-contention
//! floor, not a scaling claim.
//!
//! One tenant cycle, per testbed:
//!
//! 1. **seal** — take a [`diads_core::DiagnosisWatermark`] at the state the last
//!    diagnosis was checked in under;
//! 2. **record** — append a probe point beyond every diagnosed run window (a new
//!    store epoch: the steady-state "more metrics landed" regime);
//! 3. **diagnose_incremental** — the timed step: replay the unchanged evidence
//!    through the shared engine (warm slot checkout, atomic stats);
//! 4. **plan** — derive remediation candidates from the fresh report; each
//!    tenant's final cycle runs the full what-if-evaluated
//!    [`diads_core::Planner::plan`] so the whole remediation path stays exercised
//!    without drowning the latency spectrum in executor time.
//!
//! Run with `cargo run --release -p diads-bench --bin fleet_bench`. Pass `--smoke`
//! for the CI-sized fleet (tiny K/cycles; numbers are meaningless — write them
//! somewhere disposable: `fleet_bench --smoke /tmp/BENCH_smoke.json`). The harness
//! *splices* its `fleet` group into an existing `BENCH_diads.json` (regenerate
//! with `bench_diads` first, then run this binary).

use std::sync::{Arc, Mutex};
use std::time::Instant;

use diads_core::{DiagnosisEngine, Planner, ScenarioOutcome, Testbed};
use diads_inject::scenarios::{
    compound_config_and_contention_scenario, scenario_1, scenario_3, scenario_5, Scenario, ScenarioTimeline,
};
use diads_monitor::{ComponentId, Duration, MetricName, MetricStore, Timestamp};
use diads_stats::LatencySpectrum;

/// One tenant's mutable state: its testbed outcome plus the monotonically
/// advancing probe clock (kept past every run window so each append stays in the
/// incremental fast path).
struct Tenant {
    outcome: ScenarioOutcome,
    host: ComponentId,
    metric: MetricName,
    probe_time: Timestamp,
}

/// The measured result of one fleet pass at a fixed thread count.
struct FleetRun {
    cycles: usize,
    elapsed_secs: f64,
    spectrum: LatencySpectrum,
    warm_checkouts: u64,
    cold_checkouts: u64,
    evictions: u64,
}

fn scenario_mix(count: usize) -> Vec<Scenario> {
    let t = ScenarioTimeline::short();
    let ctors: [fn(ScenarioTimeline) -> Scenario; 4] =
        [scenario_1, scenario_3, scenario_5, compound_config_and_contention_scenario];
    (0..count).map(|i| ctors[i % ctors.len()](t)).collect()
}

/// Builds the tenant fleet: K testbeds over the scenario mix, every outcome
/// re-pointed at the one shared engine and warm-diagnosed once so the measured
/// cycles start from the steady state.
fn build_fleet(count: usize, engine: &Arc<DiagnosisEngine>) -> Vec<Mutex<Tenant>> {
    scenario_mix(count)
        .iter()
        .enumerate()
        .map(|(i, scenario)| {
            let mut outcome = Testbed::run_scenario(scenario);
            outcome.testbed.engine = Arc::clone(engine);
            let _ = outcome.diagnose(); // record evidence into the shared engine
            let probe_time = outcome
                .history
                .runs
                .iter()
                .map(|r| r.record.end)
                .max()
                .expect("scenario produced runs")
                .plus(Duration::from_mins(10));
            Mutex::new(Tenant {
                outcome,
                host: ComponentId::server(format!("fleet-host-{i:02}")),
                metric: MetricName::Custom(format!("fleetProbe{i:02}")),
                probe_time,
            })
        })
        .collect()
}

/// Runs `cycles` tenant cycles per testbed, the fleet partitioned round-robin
/// across `threads` worker threads (each tenant owned by exactly one thread, so
/// the total work is constant across thread counts and the comparison isolates
/// engine/store contention).
fn run_fleet(tenants: &[Mutex<Tenant>], engine: &DiagnosisEngine, threads: usize, cycles: usize) -> FleetRun {
    let threads = threads.min(tenants.len()).max(1);
    let before = engine.stats();
    let spectra: Mutex<Vec<LatencySpectrum>> = Mutex::new(Vec::new());
    let started = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let spectra = &spectra;
            scope.spawn(move || {
                let mut spectrum = LatencySpectrum::new();
                for cycle in 0..cycles {
                    for (i, slot) in tenants.iter().enumerate() {
                        if i % threads != worker {
                            continue;
                        }
                        let mut tenant = slot.lock().expect("tenant lock poisoned");
                        let Tenant { outcome, host, metric, probe_time } = &mut *tenant;
                        // seal at the state the last diagnosis was checked in
                        // under (watermark fingerprint == the warm slot's)...
                        let wm = outcome.seal_watermark();
                        // ...record: one probe past every run window (a fresh
                        // epoch on top of the sealed one)...
                        *probe_time = probe_time.plus(Duration::from_secs(30));
                        outcome.testbed.store.record(host, metric, *probe_time, cycle as f64);
                        // ...diagnose_incremental (the timed step)...
                        let t0 = Instant::now();
                        let report = outcome.diagnose_incremental(&wm);
                        spectrum.record(t0.elapsed().as_nanos() as f64);
                        // ...plan: candidate derivation every cycle, one full
                        // what-if-evaluated plan per tenant on the final cycle.
                        let planner = Planner::for_outcome(outcome);
                        let candidates = planner.candidates(&report, &outcome.testbed);
                        std::hint::black_box(candidates.len());
                        if cycle + 1 == cycles {
                            std::hint::black_box(planner.plan(&report, &outcome.testbed).ranked.len());
                        }
                    }
                }
                spectra.lock().expect("spectra lock poisoned").push(spectrum);
            });
        }
    });
    let elapsed_secs = started.elapsed().as_secs_f64();
    let after = engine.stats();
    let mut merged = LatencySpectrum::new();
    for s in spectra.into_inner().expect("spectra lock poisoned").iter() {
        merged.merge(s);
    }
    FleetRun {
        cycles: merged.len(),
        elapsed_secs,
        spectrum: merged,
        warm_checkouts: after.warm_checkouts - before.warm_checkouts,
        cold_checkouts: after.cold_checkouts - before.cold_checkouts,
        evictions: after.evictions - before.evictions,
    }
}

/// Measures sustained ingestion through the batched sharded writer: `threads`
/// workers record disjoint component streams into one store. Returns points/sec.
fn measure_ingestion(threads: usize, components: usize, points_per_key: usize) -> f64 {
    let mut store = MetricStore::new();
    let keys: Vec<_> = (0..components)
        .map(|i| store.intern(&ComponentId::volume(format!("F{i:02}")), &MetricName::WriteIo))
        .collect();
    let started = Instant::now();
    {
        let writer = store.sharded_writer();
        std::thread::scope(|scope| {
            for chunk in keys.chunks(components.div_ceil(threads)) {
                let writer = &writer;
                scope.spawn(move || {
                    let mut batched = writer.batched();
                    for t in 0..points_per_key as u64 {
                        for &key in chunk {
                            batched.record_key(key, Timestamp::new(t * 60), t as f64);
                        }
                    }
                });
            }
        });
    }
    let secs = started.elapsed().as_secs_f64();
    assert_eq!(store.point_count(), components * points_per_key);
    (components * points_per_key) as f64 / secs
}

fn warm_rate(run: &FleetRun) -> f64 {
    let total = run.warm_checkouts + run.cold_checkouts;
    if total == 0 {
        return f64::NAN;
    }
    run.warm_checkouts as f64 / total as f64
}

fn diagnosis_json(run: &mut FleetRun, threads: usize) -> String {
    let ms = |v: Option<f64>| v.map(|ns| ns / 1e6).unwrap_or(f64::NAN);
    format!(
        "{{\"threads\": {threads}, \"cycles\": {}, \"cycles_per_sec\": {:.1}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"p999_ms\": {:.4}, \"warm_hit_rate\": {:.4}, \"evictions\": {}}}",
        run.cycles,
        run.cycles as f64 / run.elapsed_secs,
        ms(run.spectrum.p50()),
        ms(run.spectrum.p99()),
        ms(run.spectrum.p999()),
        warm_rate(run),
        run.evictions
    )
}

/// Splices the `fleet` line into `BENCH_diads.json`: any previous `fleet` line is
/// replaced, every other group is preserved verbatim, and a missing file gets a
/// minimal skeleton (CI smoke runs write to a disposable path).
fn splice_fleet_group(out_path: &str, fleet_line: &str) {
    let existing = std::fs::read_to_string(out_path).unwrap_or_else(|_| {
        format!(
            "{{\n  \"schema\": \"diads-bench-v1\",\n  \"environment\": {{\"threads\": {}, \"parallel_feature\": {}, \"profile\": \"{}\"}},\n}}\n",
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            cfg!(feature = "parallel"),
            if cfg!(debug_assertions) { "debug" } else { "release" }
        )
    });
    let mut lines: Vec<String> = existing
        .lines()
        .filter(|l| {
            let t = l.trim();
            !t.is_empty() && t != "}" && !t.starts_with("\"fleet\"")
        })
        .map(String::from)
        .collect();
    if let Some(last) = lines.last_mut() {
        if !last.ends_with(',') && !last.ends_with('{') {
            last.push(',');
        }
    }
    lines.push(format!("  \"fleet\": {fleet_line}"));
    lines.push("}".to_string());
    let json = lines.join("\n") + "\n";
    std::fs::write(out_path, &json).expect("write BENCH_diads.json");
    println!("\n--- {out_path} ---\n{json}");
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");
    let out_path = args.into_iter().next().unwrap_or_else(|| "BENCH_diads.json".to_string());

    let testbeds = if smoke { 4 } else { 8 };
    let cycles = if smoke { 10 } else { 400 };
    let ingest_points = if smoke { 200 } else { 2_000 };
    // On a single-core container the multi-thread column still runs (contention
    // correctness floor); max(2) guarantees it is a genuinely concurrent pass.
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).clamp(2, 8);

    eprintln!("fleet_bench: building {testbeds} testbeds…");
    let engine = DiagnosisEngine::shared();
    let tenants = build_fleet(testbeds, &engine);

    eprintln!("fleet_bench: 1-thread pass ({cycles} cycles/testbed)…");
    let mut one = run_fleet(&tenants, &engine, 1, cycles);
    eprintln!("fleet_bench: {max_threads}-thread pass…");
    let mut multi = run_fleet(&tenants, &engine, max_threads, cycles);

    const INGEST_COMPONENTS: usize = 64;
    let ingest_one = measure_ingestion(1, INGEST_COMPONENTS, ingest_points);
    let ingest_multi = measure_ingestion(max_threads, INGEST_COMPONENTS, ingest_points);

    let fleet_line = format!(
        "{{\"testbeds\": {testbeds}, \"cycles_per_testbed\": {cycles}, \"scenario_mix\": \"scenario-1/3/5 + compound_config_contention (short timeline)\", \"ingestion\": {{\"series\": {INGEST_COMPONENTS}, \"points_per_series\": {ingest_points}, \"one_thread_points_per_sec\": {ingest_one:.0}, \"multi_thread_points_per_sec\": {ingest_multi:.0}, \"multi_threads\": {max_threads}}}, \"diagnosis_one_thread\": {}, \"diagnosis_multi_thread\": {}}}",
        diagnosis_json(&mut one, 1),
        diagnosis_json(&mut multi, max_threads),
    );
    splice_fleet_group(&out_path, &fleet_line);
}
