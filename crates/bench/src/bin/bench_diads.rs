//! The canonical performance tracker: measures the scoring-engine hot paths and
//! writes machine-readable results to `BENCH_diads.json` at the workspace root (or the
//! path given as the first argument), so the perf trajectory is tracked PR over PR.
//!
//! Covered comparisons:
//!
//! * **KDE scoring throughput** — re-fitting per score (the pre-cache workflow
//!   behaviour) vs. fitting once and batch-scoring with `score_many`.
//! * **Module DA latency** — the component×metric scoring loop with per-call refits
//!   vs. the shared `DiagnosisCache`, and (with the `parallel` feature on a
//!   multi-core host) the scoped-thread-pool path.
//! * **End-to-end diagnosis** — full scenario-1 batch diagnosis wall time, refit
//!   baseline vs. the cached engine.
//! * **Store recording** — direct `record_key` vs. the lock-per-shard writer,
//!   single-threaded (lock overhead) and threaded (scaling on multi-core hosts).
//! * **Scenario matrix** — the batch engine's hot path: simulate + diagnose a
//!   matrix of injected-fault scenarios, sequential loop vs. concurrent engine,
//!   plus warm re-diagnosis through the testbed-level cache; and the post-PD
//!   re-drill hot path on `compound_config_contention` (the flagship plan-change
//!   compound scenario) through the cold, warm and incremental diagnosis paths.
//! * **Incremental re-diagnosis** — the steady-state interactive loop: after a
//!   one-epoch metric append, a full cold re-diagnosis (what an invalidated
//!   engine slot costs) vs. `diagnose_incremental` over a sealed watermark; and
//!   cold engine start vs. a `DiagnosisEngine::restore`d snapshot start.
//! * **Generator** — the generative scenario engine: seeded plan sampling
//!   throughput (a 64-plan batch), the full oracle cycle (simulate + diagnose +
//!   evaluate one generated plan), and shrink-candidate enumeration.
//!
//! Run with `cargo run --release -p diads-bench --bin bench_diads`. Pass `--smoke`
//! to shrink every group to two samples — CI uses this to exercise the whole
//! regeneration path on every push without paying full measurement time (smoke
//! numbers are statistically meaningless; write them somewhere disposable).

use diads_bench::hotpath;
use diads_bench::microbench::{Criterion, Record};
use diads_core::workflow::DiagnosisCache;
use diads_core::{DiagnosisContext, DiagnosisEngine, DiagnosisWorkflow, Testbed};
use diads_gen::{check_plan, shrink_candidates, Generator, TimelineKind};
use diads_inject::scenarios::{
    compound_config_and_contention_scenario, compound_lock_and_interloper_scenario, scenario_1, scenario_3,
    scenario_5, ScenarioTimeline,
};
use diads_monitor::{ComponentId, Duration, MetricKey, MetricName, MetricStore, Timestamp};
use diads_stats::ScoringCache;
use std::hint::black_box;

fn median_of(records: &[Record], group: &str, bench: &str) -> f64 {
    records.iter().find(|r| r.group == group && r.bench == bench).map(|r| r.median_ns).unwrap_or(f64::NAN)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");
    let out_path = args.into_iter().next().unwrap_or_else(|| "BENCH_diads.json".to_string());
    // Smoke mode: minimum samples everywhere — exercises every measured path and
    // the JSON assembly, not the statistics.
    let samples = |n: usize| if smoke { 2 } else { n };
    let mut c = Criterion::new();

    // ----- KDE scoring: per-call refit vs. cache + score_many -----
    // The workload is shared with the kde_scoring bench (diads_bench::hotpath) so the
    // tracked JSON stays representative of what the bench suite measures.
    let sample = hotpath::kde_sample();
    let observations = hotpath::kde_observations();
    {
        let mut group = c.benchmark_group("kde");
        group.sample_size(samples(30));
        group.bench_function("refit_per_score", |b| {
            b.iter(|| black_box(hotpath::refit_per_score(black_box(&sample), &observations)))
        });
        group.bench_function("cached_score_many", |b| {
            let mut cache: ScoringCache<u32> = ScoringCache::new();
            let mut out = Vec::new();
            b.iter(|| {
                black_box(hotpath::cached_score_many(&mut cache, &mut out, &sample, black_box(&observations)))
            })
        });
        group.finish();
    }

    // ----- Module DA and end-to-end diagnosis over scenario 1 -----
    let mut outcome = Testbed::run_scenario(&scenario_1(ScenarioTimeline::short()));
    let apg = outcome.apg();
    let events = outcome.testbed.all_events();
    let ctx = DiagnosisContext {
        apg: &apg,
        history: &outcome.history,
        store: &outcome.testbed.store,
        events: &events,
        catalog: &outcome.testbed.catalog,
        config: &outcome.testbed.config,
        topology: outcome.testbed.san.topology(),
        workloads: outcome.testbed.san.workloads(),
    };
    let workflow = DiagnosisWorkflow::new();
    let cos = workflow.correlated_operators(&ctx, &mut DiagnosisCache::new());

    {
        let mut group = c.benchmark_group("da");
        group.sample_size(samples(20));
        group.bench_function("refit_baseline", |b| {
            b.iter(|| {
                let mut cache = DiagnosisCache::disabled();
                black_box(workflow.dependency_analysis_sequential(&ctx, &cos, &mut cache))
            })
        });
        group.bench_function("cached", |b| {
            let mut cache = DiagnosisCache::new();
            b.iter(|| black_box(workflow.dependency_analysis_sequential(&ctx, &cos, &mut cache)))
        });
        #[cfg(feature = "parallel")]
        group.bench_function("parallel", |b| {
            b.iter(|| black_box(workflow.dependency_analysis_parallel(&ctx, &cos, 0)))
        });
        group.finish();
    }

    {
        let mut group = c.benchmark_group("end_to_end");
        group.sample_size(samples(15));
        group.bench_function("scenario1_refit_baseline", |b| {
            b.iter(|| {
                let mut cache = DiagnosisCache::disabled();
                black_box(workflow.run_with_cache(black_box(&ctx), &mut cache))
            })
        });
        group.bench_function("scenario1_diagnosis", |b| b.iter(|| black_box(workflow.run(black_box(&ctx)))));
        group.bench_function("scenario1_diagnosis_warm", |b| {
            // The interactive / what-if pattern: repeated diagnoses of one context
            // share a cache, so every KDE fit after the first diagnosis is skipped.
            let mut cache = DiagnosisCache::new();
            b.iter(|| black_box(workflow.run_with_cache(black_box(&ctx), &mut cache)))
        });
        group.finish();
    }

    // ----- Store recording: direct vs. the lock-per-shard writer -----
    const RECORD_COMPONENTS: usize = 64;
    const RECORD_POINTS_PER_KEY: usize = 200;
    let intern_matrix = |store: &mut MetricStore| -> Vec<MetricKey> {
        (0..RECORD_COMPONENTS)
            .map(|i| store.intern(&ComponentId::volume(format!("V{i:02}")), &MetricName::WriteIo))
            .collect()
    };
    {
        let mut group = c.benchmark_group("store");
        group.sample_size(samples(15));
        group.bench_function("record_direct", |b| {
            b.iter(|| {
                let mut store = MetricStore::new();
                let keys = intern_matrix(&mut store);
                for t in 0..RECORD_POINTS_PER_KEY as u64 {
                    for &key in &keys {
                        store.record_key(key, Timestamp::new(t * 60), t as f64);
                    }
                }
                black_box(store.point_count())
            })
        });
        group.bench_function("record_sharded_1thread", |b| {
            // Same stream through the writer on one thread: isolates the per-record
            // uncontended lock cost.
            b.iter(|| {
                let mut store = MetricStore::new();
                let keys = intern_matrix(&mut store);
                {
                    let writer = store.sharded_writer();
                    for t in 0..RECORD_POINTS_PER_KEY as u64 {
                        for &key in &keys {
                            writer.record_key(key, Timestamp::new(t * 60), t as f64);
                        }
                    }
                }
                black_box(store.point_count())
            })
        });
        group.bench_function("record_batched_1thread", |b| {
            // Same stream through the batching front-end on one thread: the
            // per-point lock is amortized over whole buffer flushes, which is what
            // brings sharded single-thread recording back within reach of direct
            // writes (the ≤1.3× satellite pin of PR 8).
            b.iter(|| {
                let mut store = MetricStore::new();
                let keys = intern_matrix(&mut store);
                {
                    let writer = store.sharded_writer();
                    let mut batched = writer.batched();
                    for t in 0..RECORD_POINTS_PER_KEY as u64 {
                        for &key in &keys {
                            batched.record_key(key, Timestamp::new(t * 60), t as f64);
                        }
                    }
                }
                black_box(store.point_count())
            })
        });
        group.bench_function("record_sharded_threads", |b| {
            let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8);
            b.iter(|| {
                let mut store = MetricStore::new();
                let keys = intern_matrix(&mut store);
                {
                    let writer = store.sharded_writer();
                    std::thread::scope(|scope| {
                        for chunk in keys.chunks(RECORD_COMPONENTS.div_ceil(workers)) {
                            let writer = &writer;
                            scope.spawn(move || {
                                for t in 0..RECORD_POINTS_PER_KEY as u64 {
                                    for &key in chunk {
                                        writer.record_key(key, Timestamp::new(t * 60), t as f64);
                                    }
                                }
                            });
                        }
                    });
                }
                black_box(store.point_count())
            })
        });
        group.bench_function("record_batched_threads", |b| {
            let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8);
            b.iter(|| {
                let mut store = MetricStore::new();
                let keys = intern_matrix(&mut store);
                {
                    let writer = store.sharded_writer();
                    std::thread::scope(|scope| {
                        for chunk in keys.chunks(RECORD_COMPONENTS.div_ceil(workers)) {
                            let writer = &writer;
                            scope.spawn(move || {
                                let mut batched = writer.batched();
                                for t in 0..RECORD_POINTS_PER_KEY as u64 {
                                    for &key in chunk {
                                        batched.record_key(key, Timestamp::new(t * 60), t as f64);
                                    }
                                }
                            });
                        }
                    });
                }
                black_box(store.point_count())
            })
        });
        group.finish();
    }

    // ----- Scenario matrix: the concurrent batch engine's hot path -----
    // A mixed matrix (SAN contention, data-property change, lock contention, and a
    // compound DB+SAN fault with staggered onsets) on the short timeline: one
    // iteration simulates every scenario end to end and diagnoses each outcome.
    let t = ScenarioTimeline::short();
    let matrix = vec![
        scenario_1(t),
        scenario_3(t),
        scenario_5(t),
        compound_lock_and_interloper_scenario(t),
        compound_config_and_contention_scenario(t),
    ];
    {
        let mut group = c.benchmark_group("scenario_matrix");
        group.sample_size(samples(5));
        group.bench_function("sequential", |b| {
            b.iter(|| {
                let outcomes = Testbed::run_scenarios(black_box(&matrix));
                black_box(outcomes.iter().map(|o| o.diagnose()).collect::<Vec<_>>())
            })
        });
        #[cfg(feature = "parallel")]
        group.bench_function("concurrent", |b| {
            b.iter(|| {
                let outcomes = Testbed::run_scenarios_concurrent(black_box(&matrix));
                black_box(outcomes.iter().map(|o| o.diagnose()).collect::<Vec<_>>())
            })
        });
        // Re-diagnosing completed outcomes hits the testbed-level cache slots — the
        // batch caller's interactive follow-up path.
        let outcomes = Testbed::run_scenarios(&matrix);
        group.bench_function("rediagnose_warm", |b| {
            b.iter(|| black_box(outcomes.iter().map(|o| o.diagnose()).collect::<Vec<_>>()))
        });

        // The post-PD re-drill hot path: the flagship plan-change compound
        // scenario (config change flips the plan, SAN contention runs
        // concurrently) re-runs CO/DA/CR/SD against the new plan's APG, so its
        // cost differs from the gated path this bench used to exercise. Cold =
        // fresh engine per iteration; warm = testbed-cache re-diagnosis;
        // incremental = one-epoch append replayed over a sealed watermark (the
        // extend-fit path under a changed plan).
        let mut compound = Testbed::run_scenario(&compound_config_and_contention_scenario(t));
        let _ = compound.diagnose();
        group.bench_function("compound_config_contention_cold", |b| {
            b.iter(|| black_box(DiagnosisEngine::new().diagnose(black_box(&compound))))
        });
        group
            .bench_function("compound_config_contention_warm", |b| b.iter(|| black_box(compound.diagnose())));
        let cc_host = ComponentId::server("bench-compound-host");
        let cc_metric = MetricName::Custom("benchCompoundProbe".into());
        let mut cc_time = compound
            .history
            .runs
            .iter()
            .map(|r| r.record.end)
            .max()
            .expect("runs")
            .plus(Duration::from_mins(10));
        group.bench_function("compound_config_contention_incremental", |b| {
            b.iter(|| {
                let wm = compound.seal_watermark();
                cc_time = cc_time.plus(Duration::from_secs(30));
                compound.testbed.store.record(&cc_host, &cc_metric, cc_time, 1.0);
                black_box(compound.diagnose_incremental(black_box(&wm)))
            })
        });
        group.finish();
    }

    // ----- Incremental re-diagnosis: the steady-state interactive loop -----
    // The DBA's follow-up: new metrics land (one epoch's worth, outside every
    // already-diagnosed run window), and the workflow re-runs. "Full" is what that
    // costs today when the append invalidates the engine slot (a cold engine refits
    // every KDE and re-runs all six stages); "incremental" seals a watermark,
    // appends one epoch, and replays the unchanged stage evidence.
    let inc_host = ComponentId::server("bench-incremental-host");
    let inc_metric = MetricName::Custom("benchAppendProbe".into());
    let mut inc_time =
        outcome.history.runs.iter().map(|r| r.record.end).max().expect("runs").plus(Duration::from_mins(10));
    // Record stage evidence under the live fingerprint so the first watermark of the
    // measured loop checks out a warm, evidence-carrying slot.
    let _ = outcome.diagnose();
    {
        let mut group = c.benchmark_group("incremental");
        group.sample_size(samples(15));
        group.bench_function("full_rediagnosis", |b| {
            b.iter(|| black_box(DiagnosisEngine::new().diagnose(black_box(&outcome))))
        });
        group.bench_function("incremental_rediagnosis", |b| {
            b.iter(|| {
                let wm = outcome.seal_watermark();
                inc_time = inc_time.plus(Duration::from_secs(30));
                outcome.testbed.store.record(&inc_host, &inc_metric, inc_time, 1.0);
                black_box(outcome.diagnose_incremental(black_box(&wm)))
            })
        });
        group.finish();
    }

    // ----- Engine snapshot: cold start vs. restored-snapshot start -----
    // The fleet-service restart path: a restored engine pays the JSON parse once
    // (measured separately) and then serves warm KDE fits to every diagnosis,
    // where a cold-started engine refits everything on its first pass.
    let interner = outcome.testbed.store.interner().clone();
    let engine_snapshot = outcome.testbed.engine.snapshot(&interner);
    let restored_engine = DiagnosisEngine::restore(&engine_snapshot, &interner).expect("snapshot restores");
    {
        let mut group = c.benchmark_group("snapshot");
        group.sample_size(samples(15));
        group.bench_function("cold_start_diagnosis", |b| {
            b.iter(|| black_box(DiagnosisEngine::new().diagnose(black_box(&outcome))))
        });
        group.bench_function("restored_start_diagnosis", |b| {
            b.iter(|| black_box(restored_engine.diagnose(black_box(&outcome))))
        });
        group.bench_function("restore_parse", |b| {
            b.iter(|| {
                black_box(
                    DiagnosisEngine::restore(black_box(&engine_snapshot), &interner)
                        .expect("snapshot restores"),
                )
            })
        });
        group.finish();
    }

    // ----- Generative scenario engine: sampling, oracle cycle, shrinking -----
    // Sampling is the pure-CPU part (plans/second bounds how fast a fuzzing
    // campaign can enumerate shapes); the oracle cycle is the end-to-end unit of
    // work CI pays per generated plan (simulate + diagnose + evaluate); candidate
    // enumeration bounds a single shrink step's bookkeeping overhead.
    const GEN_BATCH: u64 = 64;
    let gen_generator = Generator::new(42, TimelineKind::Short);
    let gen_plan = gen_generator.plan(0);
    {
        let mut group = c.benchmark_group("generator");
        group.sample_size(samples(10));
        group.bench_function("plan_batch_64", |b| {
            b.iter(|| black_box(gen_generator.batch(black_box(GEN_BATCH))))
        });
        group.bench_function("oracle_cycle", |b| b.iter(|| black_box(check_plan(black_box(&gen_plan)))));
        group.bench_function("shrink_candidates", |b| {
            b.iter(|| black_box(shrink_candidates(black_box(&gen_plan))))
        });
        group.finish();
    }

    // ----- Assemble BENCH_diads.json -----
    let r = c.records();
    let kde_refit = median_of(r, "kde", "refit_per_score");
    let kde_cached = median_of(r, "kde", "cached_score_many");
    let da_refit = median_of(r, "da", "refit_baseline");
    let da_cached = median_of(r, "da", "cached");
    let e2e_refit = median_of(r, "end_to_end", "scenario1_refit_baseline");
    let e2e = median_of(r, "end_to_end", "scenario1_diagnosis");
    let e2e_warm = median_of(r, "end_to_end", "scenario1_diagnosis_warm");
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let parallel_enabled = cfg!(feature = "parallel");
    let da_parallel = if parallel_enabled { median_of(r, "da", "parallel") } else { f64::NAN };
    let rec_direct = median_of(r, "store", "record_direct");
    let rec_sharded = median_of(r, "store", "record_sharded_1thread");
    let rec_batched = median_of(r, "store", "record_batched_1thread");
    let rec_threads = median_of(r, "store", "record_sharded_threads");
    let rec_batched_threads = median_of(r, "store", "record_batched_threads");
    let matrix_seq = median_of(r, "scenario_matrix", "sequential");
    let matrix_conc = if parallel_enabled { median_of(r, "scenario_matrix", "concurrent") } else { f64::NAN };
    let matrix_warm = median_of(r, "scenario_matrix", "rediagnose_warm");
    let cc_cold = median_of(r, "scenario_matrix", "compound_config_contention_cold");
    let cc_warm = median_of(r, "scenario_matrix", "compound_config_contention_warm");
    let cc_inc = median_of(r, "scenario_matrix", "compound_config_contention_incremental");
    let inc_full = median_of(r, "incremental", "full_rediagnosis");
    let inc_incremental = median_of(r, "incremental", "incremental_rediagnosis");
    let snap_cold = median_of(r, "snapshot", "cold_start_diagnosis");
    let snap_restored = median_of(r, "snapshot", "restored_start_diagnosis");
    let snap_parse = median_of(r, "snapshot", "restore_parse");
    let gen_batch = median_of(r, "generator", "plan_batch_64");
    let gen_oracle = median_of(r, "generator", "oracle_cycle");
    let gen_candidates = median_of(r, "generator", "shrink_candidates");

    let mut json = String::from("{\n  \"schema\": \"diads-bench-v1\",\n");
    json.push_str(&format!(
        "  \"environment\": {{\"threads\": {threads}, \"parallel_feature\": {parallel_enabled}, \"profile\": \"{}\"}},\n",
        if cfg!(debug_assertions) { "debug" } else { "release" }
    ));
    json.push_str(&format!(
        "  \"kde_scoring\": {{\"observations\": {}, \"refit_per_score_ns\": {kde_refit:.1}, \"cached_score_many_ns\": {kde_cached:.1}, \"throughput_speedup\": {:.2}}},\n",
        observations.len(),
        kde_refit / kde_cached
    ));
    json.push_str(&format!(
        "  \"dependency_analysis\": {{\"refit_baseline_ns\": {da_refit:.1}, \"cached_ns\": {da_cached:.1}, \"cached_speedup\": {:.2}, \"parallel_ns\": {}}},\n",
        da_refit / da_cached,
        if da_parallel.is_nan() { "null".to_string() } else { format!("{da_parallel:.1}") }
    ));
    json.push_str(&format!(
        "  \"end_to_end\": {{\"scenario\": \"scenario-1 (short timeline)\", \"refit_baseline_ms\": {:.3}, \"cold_cache_ms\": {:.3}, \"warm_cache_ms\": {:.3}, \"warm_speedup\": {:.2}}},\n",
        e2e_refit / 1e6,
        e2e / 1e6,
        e2e_warm / 1e6,
        e2e_refit / e2e_warm
    ));
    json.push_str(&format!(
        "  \"store_recording\": {{\"series\": {RECORD_COMPONENTS}, \"points_per_series\": {RECORD_POINTS_PER_KEY}, \"direct_ns\": {rec_direct:.1}, \"sharded_1thread_ns\": {rec_sharded:.1}, \"batched_1thread_ns\": {rec_batched:.1}, \"batched_vs_direct\": {:.2}, \"sharded_threads_ns\": {rec_threads:.1}, \"batched_threads_ns\": {rec_batched_threads:.1}}},\n",
        rec_batched / rec_direct
    ));
    json.push_str(&format!(
        "  \"scenario_matrix\": {{\"scenarios\": {}, \"timeline\": \"short\", \"sequential_ms\": {:.1}, \"concurrent_ms\": {}, \"rediagnose_warm_ms\": {:.3}, \"compound_config_contention\": {{\"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \"incremental_ms\": {:.3}}}}},\n",
        matrix.len(),
        matrix_seq / 1e6,
        if matrix_conc.is_nan() { "null".to_string() } else { format!("{:.1}", matrix_conc / 1e6) },
        matrix_warm / 1e6,
        cc_cold / 1e6,
        cc_warm / 1e6,
        cc_inc / 1e6
    ));
    json.push_str(&format!(
        "  \"incremental\": {{\"scenario\": \"scenario-1 (short timeline)\", \"append\": \"1 epoch, 1 point beyond every run window\", \"full_rediagnosis_ms\": {:.3}, \"incremental_rediagnosis_ms\": {:.3}, \"incremental_speedup\": {:.2}}},\n",
        inc_full / 1e6,
        inc_incremental / 1e6,
        inc_full / inc_incremental
    ));
    json.push_str(&format!(
        "  \"snapshot\": {{\"scenario\": \"scenario-1 (short timeline)\", \"snapshot_bytes\": {}, \"restore_parse_ms\": {:.3}, \"cold_start_ms\": {:.3}, \"restored_start_ms\": {:.3}, \"restored_speedup\": {:.2}}},\n",
        engine_snapshot.len(),
        snap_parse / 1e6,
        snap_cold / 1e6,
        snap_restored / 1e6,
        snap_cold / snap_restored
    ));
    json.push_str(&format!(
        "  \"generator\": {{\"seed\": 42, \"timeline\": \"short\", \"batch\": {GEN_BATCH}, \"plan_batch_ms\": {:.3}, \"plans_per_sec\": {:.0}, \"oracle_cycle_ms\": {:.3}, \"shrink_candidates_ns\": {gen_candidates:.1}}}\n",
        gen_batch / 1e6,
        GEN_BATCH as f64 * 1e9 / gen_batch,
        gen_oracle / 1e6
    ));
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_diads.json");
    println!("\n--- {out_path} ---\n{json}");
}
