//! Regenerates **Figure 4**: the performance metrics DIADS collects, by layer, and
//! verifies that the default testbed actually records them.
//!
//! Run with `cargo run --release -p diads-bench --bin figure4_metrics`.

use diads_bench::harness::heading;
use diads_core::Testbed;
use diads_inject::scenarios::{scenario_1, ScenarioTimeline};
use diads_monitor::catalog::{database_metrics, network_metrics, server_metrics, storage_metrics};
use diads_monitor::Layer;

fn main() {
    heading("Figure 4: performance metrics collected by DIADS");
    for (layer, metrics) in [
        (Layer::Database, database_metrics()),
        (Layer::Server, server_metrics()),
        (Layer::Network, network_metrics()),
        (Layer::Storage, storage_metrics()),
    ] {
        println!("\n{layer} metrics ({}):", metrics.len());
        for m in metrics {
            println!("    {m}");
        }
    }

    heading("Collection coverage on the simulated testbed (scenario 1, short timeline)");
    let outcome = Testbed::run_scenario(&scenario_1(ScenarioTimeline::short()));
    let store = &outcome.testbed.store;
    println!("Distinct (component, metric) series recorded: {}", store.series_count());
    println!("Total data points: {}", store.point_count());
    let mut recorded: Vec<_> = Vec::new();
    for (key, series) in store.iter() {
        let (component, metric) = store.resolve(key);
        recorded.push((component.kind, metric.clone(), series.len()));
    }
    let mut by_layer = std::collections::BTreeMap::new();
    for (kind, metric, _) in &recorded {
        *by_layer.entry((kind.layer(), metric.clone())).or_insert(0usize) += 1;
    }
    let mut layers: Vec<Layer> = by_layer.keys().map(|(l, _)| *l).collect();
    layers.sort();
    layers.dedup();
    for layer in layers {
        let metrics: Vec<String> =
            by_layer.keys().filter(|(l, _)| *l == layer).map(|(_, m)| m.to_string()).collect();
        println!("\n{layer}: {} distinct metrics recorded ({})", metrics.len(), metrics.join(", "));
    }
}
