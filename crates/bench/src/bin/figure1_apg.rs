//! Regenerates **Figure 1**: the Annotated Plan Graph of TPC-H Query 2 over the paper's
//! testbed — 25 operators, 9 leaves, partsupp on V1 (pool P1), everything else on V2
//! (pool P2, disks 5–10), with inner and outer dependency paths.
//!
//! Run with `cargo run --release -p diads-bench --bin figure1_apg`.

use diads_bench::harness::heading;
use diads_core::Testbed;
use diads_db::OperatorId;

fn main() {
    let testbed = Testbed::paper_default(10.0);
    let plan = testbed.query.candidates[0].clone();
    let apg = testbed.build_apg(&plan);

    heading("Figure 1: Annotated Plan Graph for TPC-H Query 2");
    println!("Operators: {}   Leaf operators: {}", apg.plan.operator_count(), apg.plan.leaves().len());
    println!("Leaves on V1: {:?}", apg.leaves_on_volume("V1"));
    println!("Leaves on V2: {:?}", apg.leaves_on_volume("V2"));
    println!();
    println!("{}", apg.render());

    // The paper's example: the inner dependency path of the Part index scan.
    let part_leaf = apg
        .plan
        .leaves()
        .into_iter()
        .find(|n| n.table.as_deref() == Some("part"))
        .map(|n| n.id)
        .unwrap_or(OperatorId(10));
    println!("Inner dependency path of {part_leaf} (Index Scan on part):");
    for c in apg.inner_path(part_leaf) {
        println!("    {c}");
    }
    println!("Outer dependency path of {part_leaf}:");
    for c in apg.outer_path(part_leaf) {
        println!("    {c}");
    }
}
