//! Regenerates **Figure 2**: the diagnosis workflow — its module graph and a full
//! batch-mode execution trace over scenario 1.
//!
//! Run with `cargo run --release -p diads-bench --bin figure2_workflow`.

use diads_bench::harness::{heading, run_and_diagnose};
use diads_inject::scenarios::{scenario_1, ScenarioTimeline};

fn main() {
    heading("Figure 2: the DIADS diagnosis workflow");
    println!(
        r#"  Admin identifies satisfactory / unsatisfactory runs of query Q
      |
      v
  [PD] Plan Diffing ---- plans differ ----> plan-change analysis (index drop, data
      | same plan P                          properties, configuration parameters)
      v
  [CO] Correlate P's slowdown with operator running times  (KDE anomaly scores)
      |
      v
  [DA] Dependency paths of correlated operators; prune by correlating component
      |        performance metrics with operator slowdown
      v
  [CR] Correlate slowdown with operator record counts (data-property changes)
      |
      v
  [SD] Match symptoms against the symptoms database -> confidence scores
      |
      v
  [IA] Impact analysis: how much of the slowdown does each root cause explain?"#
    );

    let (outcome, report) = run_and_diagnose(&scenario_1(ScenarioTimeline::paper_default()));
    heading("Batch-mode execution over scenario 1");
    println!(
        "Runs: {} satisfactory, {} unsatisfactory",
        outcome.history.satisfactory().len(),
        outcome.history.unsatisfactory().len()
    );
    println!("{}", report.render());
}
