//! Service-loop harness: drives [`diads_service::DiagnosisService`] over the
//! full `all_scenarios()` tenant mix and reports the continuous-loop
//! observables — the cycle-latency spectrum (p50/p99/p999 via
//! [`diads_stats::LatencySpectrum`] inside [`diads_service::ServiceStats`]),
//! the staleness spectrum (wall-clock age of the oldest undiagnosed point at
//! each diagnosis), event throughput on the bounded service bus, warm-hit rate
//! and backpressure drops. Both a 1-thread and an N-thread column land in
//! `BENCH_diads.json` (group `service`); on a single-core host the N-thread
//! numbers are a correctness-under-contention floor, not a scaling claim.
//!
//! A busy subscriber with a small bounded queue is attached for the whole run,
//! so the drop-counting backpressure path is exercised under load, never
//! blocking a diagnosis cycle.
//!
//! Run with `cargo run --release -p diads-bench --bin service_bench`. Pass
//! `--smoke` for the CI-sized loop (few tenants/cycles; numbers are
//! meaningless — write them somewhere disposable: `service_bench --smoke
//! /tmp/BENCH_smoke.json`). The harness *splices* its `service` group into an
//! existing `BENCH_diads.json` (regenerate with `bench_diads` first).

use std::time::Instant;

use diads_inject::scenarios::all_scenarios;
use diads_service::{DiagnosisService, ServiceConfig, ServiceStats};

/// One measured pass at a fixed thread count.
struct ServiceRun {
    stats: ServiceStats,
    elapsed_secs: f64,
    events: u64,
}

fn build_service(tenants: usize) -> DiagnosisService {
    // The full Table-1 mix (smoke truncates it): every tenant is a different
    // fault shape, so warm-slot sharing across tenants is never an accident.
    let mut scenarios = all_scenarios();
    scenarios.truncate(tenants.max(1));
    DiagnosisService::new(&scenarios, ServiceConfig::default())
}

fn run_pass(service: &DiagnosisService, threads: usize, cycles: u64) -> ServiceRun {
    let before = service.stats();
    // A deliberately tiny subscriber queue that is never drained during the
    // pass: publishes beyond its capacity take the counted-drop path.
    let rx = service.hub().subscribe(64);
    let started = Instant::now();
    service.run_cycles(cycles, threads);
    let elapsed_secs = started.elapsed().as_secs_f64();
    drop(rx);
    let stats = service.stats();
    let events = stats.events_published - before.events_published;
    ServiceRun { stats, elapsed_secs, events }
}

fn pass_json(run: &ServiceRun, before: &ServiceStats, threads: usize) -> String {
    let s = &run.stats;
    let v = |o: Option<f64>| o.unwrap_or(f64::NAN);
    format!(
        "{{\"threads\": {threads}, \"cycles\": {}, \"skipped_cycles\": {}, \"cycles_per_sec\": {:.1}, \"cycle_p50_ms\": {:.4}, \"cycle_p99_ms\": {:.4}, \"cycle_p999_ms\": {:.4}, \"staleness_p50_ms\": {:.4}, \"staleness_p99_ms\": {:.4}, \"events\": {}, \"events_per_sec\": {:.0}, \"events_dropped\": {}}}",
        s.cycles - before.cycles,
        s.skipped_cycles - before.skipped_cycles,
        (s.cycles - before.cycles) as f64 / run.elapsed_secs,
        v(s.cycle_latency.p50_ms),
        v(s.cycle_latency.p99_ms),
        v(s.cycle_latency.p999_ms),
        v(s.staleness.p50_ms),
        v(s.staleness.p99_ms),
        run.events,
        run.events as f64 / run.elapsed_secs,
        s.events_dropped,
    )
}

/// Splices the `service` line into `BENCH_diads.json`: any previous `service`
/// line is replaced, every other group is preserved verbatim, and a missing
/// file gets a minimal skeleton (CI smoke runs write to a disposable path).
fn splice_service_group(out_path: &str, service_line: &str) {
    let existing = std::fs::read_to_string(out_path).unwrap_or_else(|_| {
        format!(
            "{{\n  \"schema\": \"diads-bench-v1\",\n  \"environment\": {{\"threads\": {}, \"parallel_feature\": {}, \"profile\": \"{}\"}},\n}}\n",
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            cfg!(feature = "parallel"),
            if cfg!(debug_assertions) { "debug" } else { "release" }
        )
    });
    let mut lines: Vec<String> = existing
        .lines()
        .filter(|l| {
            let t = l.trim();
            !t.is_empty() && t != "}" && !t.starts_with("\"service\"")
        })
        .map(String::from)
        .collect();
    if let Some(last) = lines.last_mut() {
        if !last.ends_with(',') && !last.ends_with('{') {
            last.push(',');
        }
    }
    lines.push(format!("  \"service\": {service_line}"));
    lines.push("}".to_string());
    let json = lines.join("\n") + "\n";
    std::fs::write(out_path, &json).expect("write BENCH_diads.json");
    println!("\n--- {out_path} ---\n{json}");
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");
    let out_path = args.into_iter().next().unwrap_or_else(|| "BENCH_diads.json".to_string());

    let tenants = if smoke { 4 } else { 14 };
    let cycles: u64 = if smoke { 12 } else { 200 };
    // On a single-core container the multi-thread column still runs (contention
    // correctness floor); max(2) guarantees it is a genuinely concurrent pass.
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).clamp(2, 8);

    eprintln!("service_bench: building service over {tenants} tenants…");
    let service = build_service(tenants);

    eprintln!("service_bench: 1-thread pass ({cycles} cycles/tenant)…");
    let before_one = service.stats();
    let one = run_pass(&service, 1, cycles);
    eprintln!("service_bench: {max_threads}-thread pass…");
    let before_multi = service.stats();
    let multi = run_pass(&service, max_threads, cycles);

    let final_stats = service.stats();
    let policy = ServiceConfig::default().seal_policy;
    let service_line = format!(
        "{{\"tenants\": {tenants}, \"cycles_per_tenant\": {cycles}, \"scenario_mix\": \"all_scenarios (paper_default timeline)\", \"seal_policy\": {{\"min_points\": {}, \"max_interval_secs\": {}}}, \"warm_hit_rate\": {:.4}, \"stats\": {}, \"pass_one_thread\": {}, \"pass_multi_thread\": {}}}",
        policy.min_points,
        policy.max_interval.as_secs(),
        final_stats.warm_hit_rate(),
        final_stats.to_json(),
        pass_json(&one, &before_one, 1),
        pass_json(&multi, &before_multi, max_threads),
    );
    splice_service_group(&out_path, &service_line);
}
