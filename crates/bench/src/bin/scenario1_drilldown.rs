//! Regenerates the **Section-5 scenario-1 drill-down**: the in-text results the paper
//! walks through (PD/CR find nothing, CO flags the V1 leaves plus upstream operators,
//! DA confirms V1's metrics only, SD gives the misconfiguration high confidence and the
//! workload-change cause medium, IA attributes ~100 % of the slowdown).
//!
//! Run with `cargo run --release -p diads-bench --bin scenario1_drilldown`.

use diads_bench::harness::heading;
use diads_core::{DiagnosisCache, DiagnosisContext, DiagnosisWorkflow, Testbed};
use diads_inject::scenarios::{scenario_1, ScenarioTimeline};
use diads_monitor::ComponentKind;

fn main() {
    let scenario = scenario_1(ScenarioTimeline::paper_default());
    let outcome = Testbed::run_scenario(&scenario);
    let apg = outcome.apg();
    let events = outcome.testbed.all_events();
    let ctx = DiagnosisContext {
        apg: &apg,
        history: &outcome.history,
        store: &outcome.testbed.store,
        events: &events,
        catalog: &outcome.testbed.catalog,
        config: &outcome.testbed.config,
        topology: outcome.testbed.san.topology(),
        workloads: outcome.testbed.san.workloads(),
    };
    let workflow = DiagnosisWorkflow::new();
    let mut cache = DiagnosisCache::new();

    heading("Scenario 1 drill-down (SAN misconfiguration causing contention in V1)");
    println!(
        "Satisfactory runs: {} (mean {:.0}s); unsatisfactory runs: {} (mean {:.0}s)",
        outcome.history.satisfactory().len(),
        outcome.history.mean_satisfactory_elapsed().unwrap_or(0.0),
        outcome.history.unsatisfactory().len(),
        outcome.history.mean_unsatisfactory_elapsed().unwrap_or(0.0),
    );

    let pd = workflow.plan_diffing(&ctx);
    println!("\n[Module PD] same plan in both periods: {}", pd.same_plan);

    let cos = workflow.correlated_operators(&ctx, &mut cache);
    println!("\n[Module CO] operator anomaly scores above the 0.8 threshold:");
    for op in &cos.correlated {
        let leaf = apg.plan.operator(*op).map(|n| n.kind.is_leaf()).unwrap_or(false);
        println!(
            "    {:>4}  score {:.3}  {}{}",
            op.to_string(),
            cos.scores[op],
            if leaf { "leaf" } else { "intermediate (event propagation)" },
            apg.volume_of(*op).map(|v| format!(", volume {v}")).unwrap_or_default()
        );
    }

    let da = workflow.dependency_analysis(&ctx, &cos, &mut cache);
    println!("\n[Module DA] correlated components (storage side):");
    for c in da.correlated_components.iter().filter(|c| {
        matches!(c.kind, ComponentKind::StorageVolume | ComponentKind::StoragePool | ComponentKind::Disk)
    }) {
        println!("    {c}");
    }

    let cr = workflow.record_counts(&ctx, &cos, &mut cache);
    println!(
        "\n[Module CR] operators with record-count changes: {}",
        if cr.changed.is_empty() {
            "none (data properties unchanged)".to_string()
        } else {
            format!("{:?}", cr.changed)
        }
    );

    let sd = workflow.symptoms(&ctx, &pd, &cos, &da, &cr);
    println!("\n[Module SD] root-cause confidence scores:");
    for cause in &sd.causes {
        println!(
            "    [{:<6}] {:>5.1}%  {}",
            cause.confidence.label(),
            cause.confidence_score,
            cause.cause_id
        );
    }

    let ia = workflow.impact_analysis(&ctx, &cos, &da, &cr, &sd);
    println!("\n[Module IA] impact scores (inverse dependency analysis):");
    for impact in &ia.impacts {
        println!("    {:<40} {:>6.1}%", impact.cause_id, impact.impact_pct);
    }
    println!("\nPaper reference: impact score 99.8% for the high-confidence root cause.");

    let report = workflow.assemble_report(&ctx, &pd, &cos, &da, &cr, &sd, &ia);
    println!("\n{}", report.render());
}
