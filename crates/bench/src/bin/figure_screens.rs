//! Regenerates **Figures 3, 6 and 7** (the GUI screens) as text: the query-selection
//! table, the APG visualization with a metric panel for volume V1, and the interactive
//! workflow screen after each module.
//!
//! Run with `cargo run --release -p diads-bench --bin figure_screens`.

use diads_bench::harness::heading;
use diads_core::screens::{apg_visualization_screen, query_selection_screen, workflow_screen};
use diads_core::{DiagnosisContext, DiagnosisWorkflow, Testbed, WorkflowSession};
use diads_inject::scenarios::{scenario_1, ScenarioTimeline};
use diads_monitor::ComponentId;

fn main() {
    let scenario = scenario_1(ScenarioTimeline::short());
    let outcome = Testbed::run_scenario(&scenario);
    let apg = outcome.apg();
    let events = outcome.testbed.all_events();
    let ctx = DiagnosisContext {
        apg: &apg,
        history: &outcome.history,
        store: &outcome.testbed.store,
        events: &events,
        catalog: &outcome.testbed.catalog,
        config: &outcome.testbed.config,
        topology: outcome.testbed.san.topology(),
        workloads: outcome.testbed.san.workloads(),
    };

    heading("Figure 3: query selection screen");
    println!("{}", query_selection_screen("TPC-H Q2", &outcome.history));

    heading("Figure 6: APG visualization screen (volume V1 selected)");
    let window = outcome
        .history
        .unsatisfactory()
        .first()
        .map(|r| r.record.window())
        .unwrap_or_else(|| outcome.history.runs.last().expect("runs exist").record.window());
    println!(
        "{}",
        apg_visualization_screen(&apg, &outcome.testbed.store, &ComponentId::volume("V1"), window)
    );

    heading("Figure 7: interactive workflow execution screen");
    let mut session = WorkflowSession::new(DiagnosisWorkflow::new(), ctx);
    println!("{}", workflow_screen(&session));
    session.run_plan_diffing();
    println!("{}", workflow_screen(&session));
    session.run_correlated_operators();
    println!("{}", workflow_screen(&session));
    session.run_dependency_analysis();
    println!("{}", workflow_screen(&session));
    session.run_record_counts();
    println!("{}", workflow_screen(&session));
    session.run_symptoms();
    println!("{}", workflow_screen(&session));
    session.run_impact_analysis();
    println!("{}", workflow_screen(&session));
}
