//! The shared refit-vs-cache KDE workload.
//!
//! Both the `kde_scoring` criterion bench and the `bench_diads` tracker measure the
//! same comparison; defining the workload once keeps the number committed to
//! `BENCH_diads.json` representative of what the bench suite measures.

use diads_stats::{Kde, ScoringCache};

/// Satisfactory-history sample used by the repeated-scoring comparison.
pub fn kde_sample() -> Vec<f64> {
    (0..40).map(|i| 100.0 + (i % 17) as f64 * 0.8).collect()
}

/// Observations scored against the sample (spanning typical through tail values).
pub fn kde_observations() -> Vec<f64> {
    (0..40).map(|i| 90.0 + i as f64 * 1.5).collect()
}

/// The pre-cache workflow behaviour: one fresh fit per scored observation.
/// Returns the score sum so callers can `black_box` it.
pub fn refit_per_score(sample: &[f64], observations: &[f64]) -> f64 {
    let mut total = 0.0;
    for &u in observations {
        let kde = Kde::fit(sample).expect("valid sample");
        total += kde.anomaly_score(u);
    }
    total
}

/// The cached engine: fit once (through the cache), batch-score into a reused buffer.
/// Returns the score sum so callers can `black_box` it.
pub fn cached_score_many(
    cache: &mut ScoringCache<u32>,
    out: &mut Vec<f64>,
    sample: &[f64],
    observations: &[f64],
) -> f64 {
    let kde = cache.fit_or_insert_with(0, || Some(sample.to_vec())).expect("valid sample");
    kde.score_many_into(observations, out);
    out.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refit_and_cached_paths_agree() {
        let sample = kde_sample();
        let observations = kde_observations();
        let refit = refit_per_score(&sample, &observations);
        let mut cache = ScoringCache::new();
        let mut out = Vec::new();
        let cached = cached_score_many(&mut cache, &mut out, &sample, &observations);
        assert!((refit - cached).abs() < 1e-9, "{refit} vs {cached}");
        assert_eq!(out.len(), observations.len());
    }
}
