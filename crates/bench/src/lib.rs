//! # diads-bench
//!
//! The experiment harness of the DIADS reproduction. Every table and figure of the
//! paper's evaluation has a binary under `src/bin/` that regenerates it (see
//! `EXPERIMENTS.md` at the workspace root for the index), and the `benches/` directory
//! holds Criterion micro/macro benchmarks of the main code paths.

pub mod harness;
pub mod hotpath;
pub mod microbench;
