//! A minimal, dependency-free micro-benchmark harness with a criterion-compatible
//! API subset.
//!
//! The real `criterion` crate is not vendored in this build environment, so this
//! module provides the part of its surface the benches use — [`Criterion`],
//! `benchmark_group`, `sample_size`, `bench_function`, `bench_with_input`,
//! [`BenchmarkId`], and the [`crate::criterion_group!`] / [`crate::criterion_main!`]
//! macros — implemented over `std::time::Instant`. The measurement protocol follows
//! the same discipline (warm-up, fixed sample count, adaptive iterations per sample,
//! median-of-samples reporting) at a fraction of the rigor, which is adequate for the
//! order-of-magnitude comparisons tracked in `BENCH_diads.json`.
//!
//! Set `DIADS_BENCH_JSON=<path>` to also append every measurement to a JSON file.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall time for one sample batch.
const TARGET_SAMPLE: Duration = Duration::from_millis(4);
/// Number of warm-up batches before sampling.
const WARMUP_BATCHES: u64 = 3;

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Record {
    /// Group name (`kde`, `workflow`, ...).
    pub group: String,
    /// Benchmark id within the group (`fit/30`, `batch_diagnosis`, ...).
    pub bench: String,
    /// Median time per iteration, in nanoseconds.
    pub median_ns: f64,
    /// Mean time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters: u64,
}

/// Entry point object, compatible with criterion's.
#[derive(Debug, Default)]
pub struct Criterion {
    records: Vec<Record>,
}

impl Criterion {
    /// Creates the harness.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 20, criterion: self }
    }

    /// All measurements taken so far.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Prints the summary table and honours `DIADS_BENCH_JSON`.
    pub fn finalize(&self) {
        if let Ok(path) = std::env::var("DIADS_BENCH_JSON") {
            if !path.is_empty() {
                let json = records_to_json(&self.records);
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("warning: could not write {path}: {e}");
                } else {
                    println!("\nwrote {} measurements to {path}", self.records.len());
                }
            }
        }
    }
}

/// A group of related benchmarks (criterion-compatible subset).
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Measures one closure.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_bench_id();
        let record = run_bench(&self.name, &id, self.sample_size, |b| f(b));
        println!(
            "{:<44} {:>14}/iter  ({} samples x {} iters)",
            format!("{}/{}", self.name, id),
            format_ns(record.median_ns),
            record.samples,
            record.iters,
        );
        self.criterion.records.push(record);
        self
    }

    /// Measures one closure with an explicit input (criterion's `bench_with_input`).
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl IntoBenchId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id.into_bench_id(), |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Times the body passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the configured number of iterations and records the elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Anything usable as a benchmark identifier (`&str` or [`BenchmarkId`]).
pub trait IntoBenchId {
    /// The rendered id.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

/// A parameterised benchmark id, compatible with criterion's `BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.id
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(group: &str, id: &str, samples: usize, mut f: F) -> Record {
    // Calibrate: find an iteration count whose batch lands near the target time.
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET_SAMPLE.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
    for _ in 0..WARMUP_BATCHES {
        f(&mut bencher);
    }
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        f(&mut bencher);
        per_iter_ns.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(f64::total_cmp);
    let median_ns = per_iter_ns[per_iter_ns.len() / 2];
    let mean_ns = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    Record { group: group.to_string(), bench: id.to_string(), median_ns, mean_ns, samples, iters }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Renders measurements as a small JSON document (no serde in this build).
pub fn records_to_json(records: &[Record]) -> String {
    let mut out = String::from("{\n  \"schema\": \"diads-microbench-v1\",\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"group\": \"{}\", \"bench\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"samples\": {}, \"iters\": {}}}{}\n",
            r.group,
            r.bench,
            r.median_ns,
            r.mean_ns,
            r.samples,
            r.iters,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Criterion-compatible group declaration.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::microbench::Criterion) {
            $($target(c);)+
        }
    };
}

/// Criterion-compatible main declaration.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::microbench::Criterion::new();
            $($group(&mut c);)+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_plausible() {
        let mut c = Criterion::new();
        {
            let mut g = c.benchmark_group("test");
            g.sample_size(5);
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| b.iter(|| (0..n).sum::<u64>()));
            g.finish();
        }
        assert_eq!(c.records().len(), 2);
        assert!(c.records()[0].median_ns >= 0.0);
        assert_eq!(c.records()[1].bench, "sum/100");
        let json = records_to_json(c.records());
        assert!(json.contains("\"bench\": \"sum/100\""));
    }
}
