//! Shared helpers for the experiment binaries.

use diads_core::{DiagnosisContext, DiagnosisReport, DiagnosisWorkflow, ScenarioOutcome, Testbed};
use diads_inject::Scenario;

/// Runs a scenario end to end and diagnoses it with the default workflow.
pub fn run_and_diagnose(scenario: &Scenario) -> (ScenarioOutcome, DiagnosisReport) {
    let outcome = Testbed::run_scenario(scenario);
    let report = diagnose(&outcome);
    (outcome, report)
}

/// Diagnoses an already-simulated scenario outcome.
pub fn diagnose(outcome: &ScenarioOutcome) -> DiagnosisReport {
    let apg = outcome.apg();
    let events = outcome.testbed.all_events();
    let ctx = DiagnosisContext {
        apg: &apg,
        history: &outcome.history,
        store: &outcome.testbed.store,
        events: &events,
        catalog: &outcome.testbed.catalog,
        config: &outcome.testbed.config,
        topology: outcome.testbed.san.topology(),
        workloads: outcome.testbed.san.workloads(),
    };
    DiagnosisWorkflow::new().run(&ctx)
}

/// Prints a horizontal rule with a title.
pub fn heading(title: &str) {
    println!("\n{}\n{}", title, "=".repeat(title.len()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use diads_inject::scenarios::{scenario_1, ScenarioTimeline};

    #[test]
    fn harness_round_trips_a_scenario() {
        let (outcome, report) = run_and_diagnose(&scenario_1(ScenarioTimeline::short()));
        assert!(!report.causes.is_empty());
        assert!(outcome.history.relative_slowdown().unwrap() > 0.0);
    }
}
