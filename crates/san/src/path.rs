//! I/O-path resolution: the SAN half of APG dependency paths.
//!
//! Section 3 defines, for every plan operator, an *inner dependency path* — the
//! components whose performance can affect the operator directly (server, HBA, FC
//! switches, storage subsystem, pool, volume, disks) — and an *outer dependency path* —
//! components that affect it indirectly by loading the inner-path components (volumes
//! sharing the same physical disks, and the external workloads using those volumes).
//! This module computes both halves for a *volume*; `diads-core` extends them up to the
//! operator level using the tablespace→volume mapping of the database layer.

use diads_monitor::{ComponentId, ComponentKind};

use crate::topology::SanTopology;
use crate::workload::ExternalWorkload;

/// The SAN components on the inner dependency path of I/O against `volume`, issued by
/// `server`: the server itself, its HBAs, every FC switch in the fabric, the owning
/// subsystem, the owning pool, the volume, and the pool's live disks.
///
/// Unknown volumes yield an empty path.
pub fn inner_path(topology: &SanTopology, server: &str, volume: &str) -> Vec<ComponentId> {
    let Some(vol) = topology.volume(volume) else {
        return Vec::new();
    };
    let mut path = Vec::new();
    if topology.server(server).is_some() {
        path.push(ComponentId::server(server));
        if let Some(s) = topology.server(server) {
            for hba in &s.hbas {
                path.push(ComponentId::new(ComponentKind::Hba, hba.clone()));
            }
        }
    }
    for switch in topology.switch_names() {
        path.push(ComponentId::new(ComponentKind::FcSwitch, switch));
    }
    if let Some(pool) = topology.pool(&vol.pool) {
        path.push(ComponentId::new(ComponentKind::StorageSubsystem, pool.subsystem.clone()));
        path.push(ComponentId::pool(pool.name.clone()));
    }
    path.push(ComponentId::volume(volume));
    for disk in topology.disks_of_volume(volume) {
        path.push(ComponentId::disk(disk.name.clone()));
    }
    path
}

/// The SAN components on the outer dependency path of `volume`: the other volumes that
/// share its physical disks and the external workloads that target those volumes (or
/// the volume itself).
pub fn outer_path(topology: &SanTopology, workloads: &[ExternalWorkload], volume: &str) -> Vec<ComponentId> {
    let mut path = Vec::new();
    let sharing = topology.volumes_sharing_disks(volume);
    for v in &sharing {
        path.push(ComponentId::volume(v.clone()));
    }
    for w in workloads {
        if w.volume == volume || sharing.contains(&w.volume) {
            path.push(ComponentId::external_workload(w.name.clone()));
        }
    }
    path
}

/// Every volume the given server can do I/O to (zoned and LUN-mapped).
pub fn accessible_volumes(topology: &SanTopology, server: &str) -> Vec<String> {
    topology
        .volume_names()
        .into_iter()
        .filter(|v| {
            topology
                .pool_of_volume(v)
                .map(|p| topology.zoning.can_access(server, &p.subsystem, v))
                .unwrap_or(false)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::paper_testbed;
    use crate::workload::IoProfile;
    use diads_monitor::{TimeRange, Timestamp};

    #[test]
    fn inner_path_of_v2_matches_figure1() {
        // Figure 1: the inner dependency path of the Part index scan (on V2) includes
        // the server, HBA, FC switches, storage subsystem, pool P2, volume V2 and
        // disks 5-10.
        let t = paper_testbed();
        let path = inner_path(&t, "db-server", "V2");
        let has = |kind: ComponentKind, name: &str| path.iter().any(|c| c.kind == kind && c.name == name);
        assert!(has(ComponentKind::Server, "db-server"));
        assert!(has(ComponentKind::Hba, "db-server-hba0"));
        assert!(has(ComponentKind::FcSwitch, "fc-switch-edge"));
        assert!(has(ComponentKind::FcSwitch, "fc-switch-core"));
        assert!(has(ComponentKind::StorageSubsystem, "DS6000"));
        assert!(has(ComponentKind::StoragePool, "P2"));
        assert!(has(ComponentKind::StorageVolume, "V2"));
        for i in 5..=10 {
            assert!(has(ComponentKind::Disk, &format!("ds-{i:02}")), "missing disk ds-{i:02}");
        }
        // And nothing from P1.
        assert!(!has(ComponentKind::StoragePool, "P1"));
        assert!(!has(ComponentKind::Disk, "ds-01"));
    }

    #[test]
    fn inner_path_unknown_volume_is_empty() {
        let t = paper_testbed();
        assert!(inner_path(&t, "db-server", "V99").is_empty());
    }

    #[test]
    fn outer_path_of_v2_includes_v3_v4_and_their_workloads() {
        // Figure 1: V2's outer dependency path includes volumes V3 and V4 (shared
        // disks) and the other applications' workloads.
        let t = paper_testbed();
        let workloads = vec![
            ExternalWorkload::steady(
                "report-archiver",
                "app-server",
                "V3",
                IoProfile::oltp(50.0, 20.0),
                TimeRange::new(Timestamp::new(0), Timestamp::new(1_000)),
            ),
            ExternalWorkload::steady(
                "unrelated-on-v1",
                "app-server",
                "V1",
                IoProfile::oltp(50.0, 20.0),
                TimeRange::new(Timestamp::new(0), Timestamp::new(1_000)),
            ),
        ];
        let path = outer_path(&t, &workloads, "V2");
        assert!(path.contains(&ComponentId::volume("V3")));
        assert!(path.contains(&ComponentId::volume("V4")));
        assert!(path.contains(&ComponentId::external_workload("report-archiver")));
        assert!(!path.contains(&ComponentId::external_workload("unrelated-on-v1")));
        // V1 shares no disks with anything in the default testbed.
        assert!(outer_path(&t, &[], "V1").is_empty());
    }

    #[test]
    fn accessible_volumes_respects_zoning_and_mapping() {
        let t = paper_testbed();
        assert_eq!(accessible_volumes(&t, "db-server"), vec!["V1", "V2"]);
        assert_eq!(accessible_volumes(&t, "app-server"), vec!["V3", "V4"]);
        assert!(accessible_volumes(&t, "nobody").is_empty());
    }
}
