//! Zoning and LUN mapping/masking.
//!
//! Two configuration settings dictate which servers can reach which storage (Section
//! 3.1.1): *zoning* controls which subsystem ports a server's HBA ports may talk to
//! through the FC fabric, and *LUN mapping/masking* controls which volumes a given host
//! is allowed to access. Scenario 1 of the evaluation is triggered by exactly these two
//! settings: a new volume V′ is created on V1's physical disks and a new zone plus LUN
//! mapping gives another application server access to it.

use std::collections::{BTreeMap, BTreeSet};

/// A named zone: a set of server names and subsystem names that may communicate.
///
/// Real zones contain WWPNs of individual ports; the simulation zones whole servers and
/// subsystems, which is the granularity the diagnosis workflow cares about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Zone {
    /// Zone name.
    pub name: String,
    /// Servers included in the zone.
    pub servers: BTreeSet<String>,
    /// Storage subsystems included in the zone.
    pub subsystems: BTreeSet<String>,
}

impl Zone {
    /// Creates a zone from iterators of server and subsystem names.
    pub fn new(
        name: impl Into<String>,
        servers: impl IntoIterator<Item = String>,
        subsystems: impl IntoIterator<Item = String>,
    ) -> Self {
        Zone {
            name: name.into(),
            servers: servers.into_iter().collect(),
            subsystems: subsystems.into_iter().collect(),
        }
    }

    /// Whether the zone lets `server` reach `subsystem`.
    pub fn allows(&self, server: &str, subsystem: &str) -> bool {
        self.servers.contains(server) && self.subsystems.contains(subsystem)
    }
}

/// LUN mapping/masking: which hosts may access which volumes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LunMapping {
    /// volume name -> set of server names allowed to access it.
    map: BTreeMap<String, BTreeSet<String>>,
}

impl LunMapping {
    /// Creates an empty mapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grants `server` access to `volume`.
    pub fn map(&mut self, volume: impl Into<String>, server: impl Into<String>) {
        self.map.entry(volume.into()).or_default().insert(server.into());
    }

    /// Revokes `server`'s access to `volume`.
    pub fn unmap(&mut self, volume: &str, server: &str) {
        if let Some(set) = self.map.get_mut(volume) {
            set.remove(server);
            if set.is_empty() {
                self.map.remove(volume);
            }
        }
    }

    /// Whether `server` is allowed to access `volume`.
    pub fn is_mapped(&self, volume: &str, server: &str) -> bool {
        self.map.get(volume).is_some_and(|s| s.contains(server))
    }

    /// All servers mapped to a volume.
    pub fn servers_for(&self, volume: &str) -> Vec<String> {
        self.map.get(volume).map(|s| s.iter().cloned().collect()).unwrap_or_default()
    }

    /// All volumes a server is mapped to.
    pub fn volumes_for(&self, server: &str) -> Vec<String> {
        self.map.iter().filter(|(_, servers)| servers.contains(server)).map(|(v, _)| v.clone()).collect()
    }
}

/// The full access-control configuration: zones plus LUN mapping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ZoningConfig {
    zones: Vec<Zone>,
    /// LUN mapping/masking table.
    pub lun_mapping: LunMapping,
}

impl ZoningConfig {
    /// Creates an empty configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces, by name) a zone.
    pub fn add_zone(&mut self, zone: Zone) {
        if let Some(existing) = self.zones.iter_mut().find(|z| z.name == zone.name) {
            *existing = zone;
        } else {
            self.zones.push(zone);
        }
    }

    /// The zones, in insertion order.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// Whether the fabric configuration lets `server` reach `subsystem` at all.
    pub fn zoned(&self, server: &str, subsystem: &str) -> bool {
        self.zones.iter().any(|z| z.allows(server, subsystem))
    }

    /// Whether `server` can actually do I/O to `volume` hosted on `subsystem`:
    /// it must be both zoned to the subsystem and LUN-mapped to the volume.
    pub fn can_access(&self, server: &str, subsystem: &str, volume: &str) -> bool {
        self.zoned(server, subsystem) && self.lun_mapping.is_mapped(volume, server)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ZoningConfig {
        let mut z = ZoningConfig::new();
        z.add_zone(Zone::new("db-zone", vec!["db-server".into()], vec!["DS6000".into()]));
        z.lun_mapping.map("V1", "db-server");
        z.lun_mapping.map("V2", "db-server");
        z
    }

    #[test]
    fn zone_allows_only_its_members() {
        let zone = Zone::new("z", vec!["s1".into()], vec!["sub1".into()]);
        assert!(zone.allows("s1", "sub1"));
        assert!(!zone.allows("s2", "sub1"));
        assert!(!zone.allows("s1", "sub2"));
    }

    #[test]
    fn access_requires_zone_and_mapping() {
        let cfg = config();
        assert!(cfg.can_access("db-server", "DS6000", "V1"));
        // Zoned but not mapped.
        assert!(!cfg.can_access("db-server", "DS6000", "V3"));
        // Mapped but not zoned.
        let mut cfg2 = ZoningConfig::new();
        cfg2.lun_mapping.map("V1", "etl-server");
        assert!(!cfg2.can_access("etl-server", "DS6000", "V1"));
    }

    #[test]
    fn scenario1_misconfiguration_grants_access() {
        // The scenario-1 misconfiguration: a new zone + mapping lets the ETL server
        // reach the new volume V' on the DB's disks.
        let mut cfg = config();
        cfg.add_zone(Zone::new("etl-zone", vec!["etl-server".into()], vec!["DS6000".into()]));
        cfg.lun_mapping.map("Vprime", "etl-server");
        assert!(cfg.can_access("etl-server", "DS6000", "Vprime"));
        assert!(!cfg.can_access("etl-server", "DS6000", "V1"));
    }

    #[test]
    fn unmap_revokes_access() {
        let mut cfg = config();
        cfg.lun_mapping.unmap("V1", "db-server");
        assert!(!cfg.can_access("db-server", "DS6000", "V1"));
        assert!(cfg.lun_mapping.servers_for("V1").is_empty());
        // Unmapping a non-existent pair is a no-op.
        cfg.lun_mapping.unmap("V9", "nobody");
    }

    #[test]
    fn add_zone_replaces_by_name() {
        let mut cfg = config();
        assert_eq!(cfg.zones().len(), 1);
        cfg.add_zone(Zone::new("db-zone", vec!["other".into()], vec!["DS6000".into()]));
        assert_eq!(cfg.zones().len(), 1);
        assert!(!cfg.zoned("db-server", "DS6000"));
        assert!(cfg.zoned("other", "DS6000"));
    }

    #[test]
    fn mapping_lookups() {
        let cfg = config();
        assert_eq!(cfg.lun_mapping.volumes_for("db-server"), vec!["V1".to_string(), "V2".to_string()]);
        assert_eq!(cfg.lun_mapping.servers_for("V1"), vec!["db-server".to_string()]);
    }
}
