//! The SAN performance engine.
//!
//! The engine turns *offered load* (external workloads plus the database's own I/O)
//! into *observed performance*: per-disk utilisation via an M/M/1-style queueing model,
//! response times that grow as shared disks saturate, and per-component metric samples
//! recorded through the monitoring collector. Cross-volume contention arises naturally:
//! every volume carved from a pool spreads its I/O over the same physical disks, so a
//! new volume V′ placed on V1's pool (scenario 1) inflates the service times V1's I/O
//! experiences even though V1's own request rate is unchanged.
//!
//! Front-end vs. back-end metrics: volume metrics describe the I/O issued *to that
//! volume* (front-end); pool and disk metrics describe the physical activity on the
//! spindles (back-end), which includes every volume sharing them plus RAID overheads
//! and rebuild traffic. Both views are recorded, exactly like an enterprise controller
//! (and both appear in an operator's dependency path, so dependency analysis sees the
//! contention wherever it physically manifests).

use diads_monitor::{
    ComponentId, ComponentKind, Duration, IntervalSampler, MetricKey, MetricName, MetricSink, TimeRange,
    Timestamp,
};

use crate::topology::SanTopology;
use crate::workload::{ExternalWorkload, IoProfile};
use crate::{Result, SanError};

/// Tunables of the performance model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SanPerfConfig {
    /// Disk service time of one random read at zero load (milliseconds).
    pub random_read_service_ms: f64,
    /// Disk service time of one random write at zero load (milliseconds).
    pub random_write_service_ms: f64,
    /// Disk service time of one sequential I/O at zero load (milliseconds).
    pub sequential_service_ms: f64,
    /// Fraction of reads absorbed by the controller cache.
    pub controller_cache_hit_fraction: f64,
    /// Service time of a controller-cache hit (milliseconds).
    pub cache_hit_service_ms: f64,
    /// Utilisation cap used when computing queueing delay (keeps response times finite).
    pub max_utilization: f64,
    /// Step, in seconds, at which the engine evaluates load and emits raw samples.
    pub metric_step_secs: u64,
}

impl Default for SanPerfConfig {
    fn default() -> Self {
        SanPerfConfig {
            random_read_service_ms: 5.0,
            random_write_service_ms: 6.0,
            sequential_service_ms: 0.9,
            controller_cache_hit_fraction: 0.3,
            cache_hit_service_ms: 0.2,
            max_utilization: 0.95,
            metric_step_secs: 30,
        }
    }
}

/// Extra I/O load against a volume over a window of time — how the database executor
/// tells the SAN about the I/O a query run will issue.
#[derive(Debug, Clone, PartialEq)]
pub struct VolumeLoad {
    /// Target volume.
    pub volume: String,
    /// I/O intensity.
    pub profile: IoProfile,
    /// Window during which the load is applied.
    pub window: TimeRange,
}

impl VolumeLoad {
    /// Creates a volume load.
    pub fn new(volume: impl Into<String>, profile: IoProfile, window: TimeRange) -> Self {
        VolumeLoad { volume: volume.into(), profile, window }
    }

    fn profile_at(&self, t: Timestamp) -> IoProfile {
        if self.window.contains(t) {
            self.profile
        } else {
            IoProfile::IDLE
        }
    }
}

/// Read/write response times of a volume at an instant, in milliseconds per I/O.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VolumeResponse {
    /// Average read response time (ms).
    pub read_ms: f64,
    /// Average write response time (ms).
    pub write_ms: f64,
    /// Mean utilisation of the disks backing the volume (0..1).
    pub disk_utilization: f64,
}

/// A window during which a RAID rebuild loads a pool's disks.
#[derive(Debug, Clone, PartialEq)]
struct RebuildWindow {
    pool: String,
    window: TimeRange,
}

/// The SAN simulator: topology + external workloads + the performance model.
#[derive(Debug, Clone)]
pub struct SanSimulator {
    topology: SanTopology,
    workloads: Vec<ExternalWorkload>,
    rebuilds: Vec<RebuildWindow>,
    config: SanPerfConfig,
}

impl SanSimulator {
    /// Creates a simulator over a topology with the default performance model.
    pub fn new(topology: SanTopology) -> Self {
        Self::with_config(topology, SanPerfConfig::default())
    }

    /// Creates a simulator with explicit performance tunables.
    pub fn with_config(topology: SanTopology, config: SanPerfConfig) -> Self {
        SanSimulator { topology, workloads: Vec::new(), rebuilds: Vec::new(), config }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &SanTopology {
        &self.topology
    }

    /// Mutable access to the topology (used by the fault injector).
    pub fn topology_mut(&mut self) -> &mut SanTopology {
        &mut self.topology
    }

    /// The performance configuration.
    pub fn config(&self) -> &SanPerfConfig {
        &self.config
    }

    /// Registers an external workload.
    ///
    /// # Errors
    /// Fails if the target volume does not exist.
    pub fn add_workload(&mut self, workload: ExternalWorkload) -> Result<()> {
        if self.topology.volume(&workload.volume).is_none() {
            return Err(SanError::UnknownComponent(workload.volume.clone()));
        }
        self.workloads.push(workload);
        Ok(())
    }

    /// The registered external workloads.
    pub fn workloads(&self) -> &[ExternalWorkload] {
        &self.workloads
    }

    /// Registers a RAID-rebuild window on a pool (also emits the start event).
    ///
    /// # Errors
    /// Fails if the pool does not exist.
    pub fn add_rebuild_window(&mut self, pool: &str, window: TimeRange) -> Result<()> {
        self.topology.start_raid_rebuild(window.start, pool)?;
        self.rebuilds.push(RebuildWindow { pool: pool.to_string(), window });
        Ok(())
    }

    /// Total external load offered to a volume at an instant.
    pub fn external_volume_load(&self, volume: &str, t: Timestamp) -> IoProfile {
        let mut total = IoProfile::IDLE;
        for w in &self.workloads {
            if w.volume == volume {
                let p = w.profile_at(t);
                total = combine(total, p);
            }
        }
        total
    }

    /// The combined (external + extra) load on a volume at an instant.
    fn offered_volume_load(&self, volume: &str, t: Timestamp, extra: &[VolumeLoad]) -> IoProfile {
        let mut total = self.external_volume_load(volume, t);
        for e in extra {
            if e.volume == volume {
                total = combine(total, e.profile_at(t));
            }
        }
        total
    }

    /// Mean service time of one read issued to a pool's disks (ms), given the mix.
    fn read_service_ms(&self, seq_fraction: f64) -> f64 {
        let cache = self.config.controller_cache_hit_fraction;
        let miss_service = seq_fraction * self.config.sequential_service_ms
            + (1.0 - seq_fraction) * self.config.random_read_service_ms;
        cache * self.config.cache_hit_service_ms + (1.0 - cache) * miss_service
    }

    /// Mean service time of one write issued to a pool's disks (ms), given the mix.
    fn write_service_ms(&self, seq_fraction: f64) -> f64 {
        seq_fraction * self.config.sequential_service_ms
            + (1.0 - seq_fraction) * self.config.random_write_service_ms
    }

    /// Utilisation of one disk at an instant given extra loads, in `[0, 1+)`.
    ///
    /// The utilisation is the fraction of the second the disk spends servicing the
    /// back-end I/O of every volume in its pool (RAID amplification included) plus any
    /// rebuild traffic.
    pub fn disk_utilization(&self, disk: &str, t: Timestamp, extra: &[VolumeLoad]) -> f64 {
        let Some(d) = self.topology.disk(disk) else { return 0.0 };
        if d.failed {
            return 0.0;
        }
        let Some(pool) = self
            .topology
            .pool_names()
            .into_iter()
            .filter_map(|p| self.topology.pool(&p))
            .find(|p| p.disks.iter().any(|x| x == disk))
            .cloned()
        else {
            return 0.0;
        };
        let live_disks = pool
            .disks
            .iter()
            .filter(|d| self.topology.disk(d).map(|x| !x.failed).unwrap_or(false))
            .count()
            .max(1) as f64;
        let mut busy_ms_per_sec = 0.0;
        for v in self.topology.volumes_in_pool(&pool.name) {
            let load = self.offered_volume_load(&v.name, t, extra);
            if load.total_iops() <= 0.0 {
                continue;
            }
            let read_amp = pool.raid.read_amplification();
            let write_amp = pool.raid.write_amplification();
            let per_disk_reads = load.read_iops * read_amp / live_disks;
            let per_disk_writes = load.write_iops * write_amp / live_disks;
            busy_ms_per_sec += per_disk_reads * self.read_service_ms(load.sequential_fraction)
                + per_disk_writes * self.write_service_ms(load.sequential_fraction);
        }
        let mut utilization = busy_ms_per_sec / 1000.0;
        if self.rebuild_active(&pool.name, t) {
            utilization += pool.raid.rebuild_load_factor();
        }
        utilization
    }

    fn rebuild_active(&self, pool: &str, t: Timestamp) -> bool {
        self.rebuilds.iter().any(|r| r.pool == pool && r.window.contains(t))
    }

    /// Response times experienced by I/O to a volume at an instant, given extra loads.
    pub fn volume_response(&self, volume: &str, t: Timestamp, extra: &[VolumeLoad]) -> VolumeResponse {
        let disks = self.topology.disks_of_volume(volume);
        let load = self.offered_volume_load(volume, t, extra);
        let read_service = self.read_service_ms(load.sequential_fraction);
        let write_service = self.write_service_ms(load.sequential_fraction);
        if disks.is_empty() {
            // No surviving disks: service is effectively unavailable.
            return VolumeResponse { read_ms: 10_000.0, write_ms: 10_000.0, disk_utilization: 1.0 };
        }
        let mut util_sum = 0.0;
        for d in &disks {
            util_sum += self.disk_utilization(&d.name, t, extra);
        }
        let utilization = (util_sum / disks.len() as f64).min(self.config.max_utilization);
        let queue_factor = 1.0 / (1.0 - utilization);
        VolumeResponse {
            read_ms: read_service * queue_factor,
            write_ms: write_service * queue_factor,
            disk_utilization: utilization,
        }
    }

    /// Convenience: the average *read* latency (ms) a database page read against this
    /// volume experiences at `t`, given the query's own concurrent load.
    pub fn page_read_latency_ms(&self, volume: &str, t: Timestamp, extra: &[VolumeLoad]) -> f64 {
        self.volume_response(volume, t, extra).read_ms
    }

    /// Steps through a time range and records raw performance samples for every SAN
    /// component into the collector. `extra` carries the database's own I/O windows so
    /// the stored metrics reflect the full offered load.
    ///
    /// The sink is either an exclusively-borrowed `MetricStore` (the sequential
    /// reference path) or a `&ShardedWriter` view, which lets several workers — each
    /// with its own sampler over an interval-aligned sub-range — record one
    /// scenario's SAN metrics concurrently. Per-series noise streams make the two
    /// bit-identical.
    pub fn record_metrics<S: MetricSink>(
        &self,
        range: TimeRange,
        extra: &[VolumeLoad],
        sampler: &mut IntervalSampler,
        store: &mut S,
    ) {
        let step = self.config.metric_step_secs.max(1);
        let mut t = range.start;
        while t < range.end {
            self.record_step(t, step, extra, sampler, store);
            t = t.plus(Duration::from_secs(step));
        }
    }

    fn record_step<S: MetricSink>(
        &self,
        t: Timestamp,
        step: u64,
        extra: &[VolumeLoad],
        sampler: &mut IntervalSampler,
        store: &mut S,
    ) {
        let step_f = step as f64;
        let mut pool_acc: std::collections::BTreeMap<String, [f64; 6]> = std::collections::BTreeMap::new();
        let mut total_bytes = 0.0;
        let mut total_ios = 0.0;

        // Volumes (front-end view).
        for name in self.topology.volume_names() {
            let load = self.offered_volume_load(&name, t, extra);
            let resp = self.volume_response(&name, t, extra);
            let reads = load.read_iops * step_f;
            let writes = load.write_iops * step_f;
            let bytes_read = load.read_iops * load.read_kb * 1024.0 * step_f;
            let bytes_written = load.write_iops * load.write_kb * 1024.0 * step_f;
            let read_time_s = reads * resp.read_ms / 1000.0;
            let write_time_s = writes * resp.write_ms / 1000.0;
            let comp = store.intern_component(&ComponentId::volume(&name));
            let mut emit = |metric: MetricName, value: f64| {
                let key = MetricKey::new(comp, store.intern_metric(&metric));
                sampler.observe(store, key, t, value);
            };
            emit(MetricName::ReadIo, reads);
            emit(MetricName::WriteIo, writes);
            emit(MetricName::BytesRead, bytes_read);
            emit(MetricName::BytesWritten, bytes_written);
            emit(MetricName::ReadTime, read_time_s);
            emit(MetricName::WriteTime, write_time_s);
            emit(MetricName::ReadResponseTimeMs, resp.read_ms);
            emit(MetricName::WriteResponseTimeMs, resp.write_ms);
            emit(MetricName::SequentialReadRequests, reads * load.sequential_fraction);
            emit(MetricName::SequentialWriteRequests, writes * load.sequential_fraction);
            emit(
                MetricName::SequentialReadHits,
                reads * load.sequential_fraction * self.config.controller_cache_hit_fraction,
            );
            emit(MetricName::ContaminatingWrites, writes * load.sequential_fraction * 0.05);
            emit(MetricName::TotalIos, reads + writes);
            emit(MetricName::Utilization, resp.disk_utilization);

            if let Some(pool) = self.topology.pool_of_volume(&name) {
                let acc = pool_acc.entry(pool.name.clone()).or_insert([0.0; 6]);
                acc[0] += reads * pool.raid.read_amplification();
                acc[1] += writes * pool.raid.write_amplification();
                acc[2] += bytes_read;
                acc[3] += bytes_written;
                acc[4] += read_time_s;
                acc[5] += write_time_s;
            }
            total_bytes += bytes_read + bytes_written;
            total_ios += reads + writes;
        }

        // Pools and their disks (back-end view).
        for pool_name in self.topology.pool_names() {
            let acc = pool_acc.get(&pool_name).copied().unwrap_or([0.0; 6]);
            let comp = store.intern_component(&ComponentId::pool(&pool_name));
            let pool_util = {
                let pool = self.topology.pool(&pool_name).expect("pool exists");
                let live: Vec<&str> = pool
                    .disks
                    .iter()
                    .filter(|d| self.topology.disk(d).map(|x| !x.failed).unwrap_or(false))
                    .map(|d| d.as_str())
                    .collect();
                if live.is_empty() {
                    1.0
                } else {
                    live.iter().map(|d| self.disk_utilization(d, t, extra)).sum::<f64>() / live.len() as f64
                }
            };
            let mut emit = |metric: MetricName, value: f64| {
                let key = MetricKey::new(comp, store.intern_metric(&metric));
                sampler.observe(store, key, t, value);
            };
            emit(MetricName::ReadIo, acc[0]);
            emit(MetricName::WriteIo, acc[1]);
            emit(MetricName::BytesRead, acc[2]);
            emit(MetricName::BytesWritten, acc[3]);
            emit(MetricName::ReadTime, acc[4]);
            emit(MetricName::WriteTime, acc[5]);
            emit(MetricName::TotalIos, acc[0] + acc[1]);
            emit(MetricName::Utilization, pool_util);

            let pool = self.topology.pool(&pool_name).expect("pool exists");
            let live_disks: Vec<&str> = pool
                .disks
                .iter()
                .filter(|d| self.topology.disk(d).map(|x| !x.failed).unwrap_or(false))
                .map(|d| d.as_str())
                .collect();
            let n = live_disks.len().max(1) as f64;
            for disk in &live_disks {
                let comp = store.intern_component(&ComponentId::disk(*disk));
                let util = self.disk_utilization(disk, t, extra);
                let mut emit = |metric: MetricName, value: f64| {
                    let key = MetricKey::new(comp, store.intern_metric(&metric));
                    sampler.observe(store, key, t, value);
                };
                emit(MetricName::ReadIo, acc[0] / n);
                emit(MetricName::WriteIo, acc[1] / n);
                emit(MetricName::BytesRead, acc[2] / n);
                emit(MetricName::BytesWritten, acc[3] / n);
                emit(MetricName::ReadTime, acc[4] / n);
                emit(MetricName::WriteTime, acc[5] / n);
                emit(MetricName::TotalIos, (acc[0] + acc[1]) / n);
                emit(MetricName::Utilization, util);
            }
        }

        // Subsystems: aggregate of every pool.
        for sub in self.topology.subsystem_names() {
            let comp = store.intern_component(&ComponentId::new(ComponentKind::StorageSubsystem, &sub));
            let mut emit = |metric: MetricName, value: f64| {
                let key = MetricKey::new(comp, store.intern_metric(&metric));
                sampler.observe(store, key, t, value);
            };
            emit(MetricName::TotalIos, total_ios);
            emit(MetricName::BytesRead, total_bytes * 0.5);
            emit(MetricName::BytesWritten, total_bytes * 0.5);
        }

        // Fabric: split bytes evenly across switches; errors stay at zero.
        let n_switches = self.topology.switch_names().len().max(1) as f64;
        for sw in self.topology.switch_names() {
            let comp = store.intern_component(&ComponentId::new(ComponentKind::FcSwitch, &sw));
            let mut emit = |metric: MetricName, value: f64| {
                let key = MetricKey::new(comp, store.intern_metric(&metric));
                sampler.observe(store, key, t, value);
            };
            emit(MetricName::BytesTransmitted, total_bytes / n_switches / 2.0);
            emit(MetricName::BytesReceived, total_bytes / n_switches / 2.0);
            emit(MetricName::PacketsTransmitted, total_ios / n_switches);
            emit(MetricName::PacketsReceived, total_ios / n_switches);
            emit(MetricName::ErrorFrames, 0.0);
            emit(MetricName::CrcErrors, 0.0);
            emit(MetricName::LinkFailures, 0.0);
            emit(MetricName::DumpedFrames, 0.0);
        }

        // HBAs: traffic of the volumes mapped to their server.
        for hba_name in self.topology.hba_names() {
            let Some(hba) = self.topology.hba(&hba_name) else { continue };
            let mut bytes = 0.0;
            let mut ios = 0.0;
            for vol in self.topology.zoning.lun_mapping.volumes_for(&hba.server) {
                let load = self.offered_volume_load(&vol, t, extra);
                bytes += (load.read_iops * load.read_kb + load.write_iops * load.write_kb) * 1024.0 * step_f;
                ios += load.total_iops() * step_f;
            }
            let comp = store.intern_component(&ComponentId::new(ComponentKind::Hba, &hba_name));
            let mut emit = |metric: MetricName, value: f64| {
                let key = MetricKey::new(comp, store.intern_metric(&metric));
                sampler.observe(store, key, t, value);
            };
            emit(MetricName::BytesTransmitted, bytes / 2.0);
            emit(MetricName::BytesReceived, bytes / 2.0);
            emit(MetricName::PacketsTransmitted, ios / 2.0);
            emit(MetricName::PacketsReceived, ios / 2.0);
            emit(MetricName::ErrorFrames, 0.0);
            emit(MetricName::CrcErrors, 0.0);
        }
    }
}

fn combine(a: IoProfile, b: IoProfile) -> IoProfile {
    let total_read = a.read_iops + b.read_iops;
    let total_write = a.write_iops + b.write_iops;
    let total = total_read + total_write;
    if total <= 0.0 {
        return IoProfile::IDLE;
    }
    // Transfer sizes and sequentiality are blended weighted by operation counts.
    let read_kb = if total_read > 0.0 {
        (a.read_iops * a.read_kb + b.read_iops * b.read_kb) / total_read
    } else {
        a.read_kb
    };
    let write_kb = if total_write > 0.0 {
        (a.write_iops * a.write_kb + b.write_iops * b.write_kb) / total_write
    } else {
        a.write_kb
    };
    let seq = (a.total_iops() * a.sequential_fraction + b.total_iops() * b.sequential_fraction) / total;
    IoProfile { read_iops: total_read, write_iops: total_write, read_kb, write_kb, sequential_fraction: seq }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::paper_testbed;
    use crate::workload::BurstPattern;
    use diads_monitor::noise::NoiseModel;
    use diads_monitor::MetricStore;

    fn window(start: u64, secs: u64) -> TimeRange {
        TimeRange::with_duration(Timestamp::new(start), Duration::from_secs(secs))
    }

    fn quiet_sim() -> SanSimulator {
        SanSimulator::new(paper_testbed())
    }

    #[test]
    fn idle_san_has_low_latency() {
        let sim = quiet_sim();
        let resp = sim.volume_response("V1", Timestamp::new(100), &[]);
        assert!(resp.disk_utilization < 0.01);
        assert!(resp.read_ms < 5.0, "near service time: {}", resp.read_ms);
        assert!(resp.write_ms >= resp.read_ms * 0.5);
    }

    #[test]
    fn contention_on_shared_disks_raises_v1_latency() {
        // Scenario 1's physics: V' is created on P1 (V1's disks) and an external
        // workload hammers it; V1's latency rises although V1's own load is unchanged.
        let mut sim = quiet_sim();
        let t0 = Timestamp::new(0);
        sim.topology_mut().create_volume(t0, "Vprime", "P1", 50).unwrap();
        let baseline = sim.page_read_latency_ms("V1", Timestamp::new(5_000), &[]);
        sim.add_workload(ExternalWorkload::steady(
            "etl-on-vprime",
            "app-server",
            "Vprime",
            IoProfile::oltp(250.0, 120.0),
            window(1_000, 100_000),
        ))
        .unwrap();
        let contended = sim.page_read_latency_ms("V1", Timestamp::new(5_000), &[]);
        assert!(contended > baseline * 2.0, "baseline {baseline} contended {contended}");
        // V2 lives on P2 and is unaffected.
        let v2 = sim.page_read_latency_ms("V2", Timestamp::new(5_000), &[]);
        assert!(v2 < baseline * 1.5, "v2 latency {v2} should stay near baseline {baseline}");
    }

    #[test]
    fn workload_against_unknown_volume_is_rejected() {
        let mut sim = quiet_sim();
        let err = sim.add_workload(ExternalWorkload::steady(
            "bad",
            "app-server",
            "V99",
            IoProfile::oltp(10.0, 10.0),
            window(0, 10),
        ));
        assert!(matches!(err, Err(SanError::UnknownComponent(_))));
    }

    #[test]
    fn extra_query_load_contributes_to_utilization() {
        let sim = quiet_sim();
        let t = Timestamp::new(500);
        let idle = sim.disk_utilization("ds-01", t, &[]);
        let extra = vec![VolumeLoad::new("V1", IoProfile::oltp(300.0, 50.0), window(0, 1_000))];
        let busy = sim.disk_utilization("ds-01", t, &extra);
        assert!(busy > idle + 0.05, "idle {idle}, busy {busy}");
        // Outside the window the extra load does not apply.
        let later = sim.disk_utilization("ds-01", Timestamp::new(5_000), &extra);
        assert!(later < 0.01);
    }

    #[test]
    fn failed_disks_shrink_the_pool_and_raise_latency() {
        let mut sim = quiet_sim();
        sim.add_workload(ExternalWorkload::steady(
            "steady",
            "db-server",
            "V1",
            IoProfile::oltp(150.0, 60.0),
            window(0, 100_000),
        ))
        .unwrap();
        let before = sim.volume_response("V1", Timestamp::new(100), &[]);
        sim.topology_mut().fail_disk(Timestamp::new(200), "ds-01").unwrap();
        let after = sim.volume_response("V1", Timestamp::new(300), &[]);
        assert!(after.read_ms > before.read_ms);
        assert!(after.disk_utilization > before.disk_utilization);
    }

    #[test]
    fn rebuild_window_adds_background_load() {
        let mut sim = quiet_sim();
        let before = sim.disk_utilization("ds-05", Timestamp::new(100), &[]);
        sim.add_rebuild_window("P2", window(50, 1_000)).unwrap();
        let during = sim.disk_utilization("ds-05", Timestamp::new(100), &[]);
        let after = sim.disk_utilization("ds-05", Timestamp::new(5_000), &[]);
        assert!(during > before + 0.3);
        assert!(after < 0.05);
        assert!(sim.add_rebuild_window("P9", window(0, 10)).is_err());
    }

    #[test]
    fn bursty_load_alternates() {
        let mut sim = quiet_sim();
        sim.add_workload(ExternalWorkload::bursty(
            "bursty-v2",
            "app-server",
            "V2",
            IoProfile::batch_write(400.0),
            BurstPattern::Bursty { period_secs: 600, burst_secs: 60, multiplier: 1.0, idle_fraction: 0.0 },
            window(0, 100_000),
        ))
        .unwrap();
        let during_burst = sim.volume_response("V2", Timestamp::new(30), &[]);
        let between = sim.volume_response("V2", Timestamp::new(300), &[]);
        assert!(during_burst.disk_utilization > between.disk_utilization);
    }

    #[test]
    fn record_metrics_populates_the_store() {
        let mut sim = quiet_sim();
        sim.add_workload(ExternalWorkload::steady(
            "app-load",
            "app-server",
            "V3",
            IoProfile::oltp(100.0, 80.0),
            window(0, 3_600),
        ))
        .unwrap();
        let mut sampler = IntervalSampler::new(Duration::from_mins(5), NoiseModel::None, 7);
        let mut store = MetricStore::new();
        sim.record_metrics(window(0, 3_600), &[], &mut sampler, &mut store);
        sampler.flush(&mut store);

        let full = window(0, 3_600);
        let v3_write = store.mean_in(&ComponentId::volume("V3"), &MetricName::WriteIo, full).unwrap();
        assert!(v3_write > 0.0);
        let v1_write = store.mean_in(&ComponentId::volume("V1"), &MetricName::WriteIo, full).unwrap();
        assert!(v1_write.abs() < 1e-9, "idle volume records ~0: {v1_write}");
        // Back-end view exists for pools and disks.
        assert!(store.mean_in(&ComponentId::pool("P2"), &MetricName::WriteIo, full).unwrap() > 0.0);
        assert!(store.mean_in(&ComponentId::disk("ds-05"), &MetricName::Utilization, full).is_some());
        // Fabric and HBA series exist too.
        assert!(store
            .mean_in(
                &ComponentId::new(ComponentKind::FcSwitch, "fc-switch-core"),
                &MetricName::BytesTransmitted,
                full
            )
            .is_some());
        assert!(store
            .mean_in(
                &ComponentId::new(ComponentKind::Hba, "app-server-hba0"),
                &MetricName::BytesReceived,
                full
            )
            .is_some());
        // Roughly one point per 5-minute interval for a 1-hour window.
        let series = store.series(&ComponentId::volume("V3"), &MetricName::WriteIo).unwrap();
        assert!(series.len() >= 10 && series.len() <= 13, "got {}", series.len());
    }

    #[test]
    fn raid5_pool_write_amplification_shows_up_in_pool_counters() {
        let mut sim = quiet_sim();
        sim.add_workload(ExternalWorkload::steady(
            "writer",
            "app-server",
            "V3",
            IoProfile {
                read_iops: 0.0,
                write_iops: 100.0,
                read_kb: 8.0,
                write_kb: 8.0,
                sequential_fraction: 0.0,
            },
            window(0, 600),
        ))
        .unwrap();
        let mut sampler = IntervalSampler::new(Duration::from_mins(5), NoiseModel::None, 1);
        let mut store = MetricStore::new();
        sim.record_metrics(window(0, 600), &[], &mut sampler, &mut store);
        sampler.flush(&mut store);
        let full = window(0, 600);
        let front = store.mean_in(&ComponentId::volume("V3"), &MetricName::WriteIo, full).unwrap();
        let back = store.mean_in(&ComponentId::pool("P2"), &MetricName::WriteIo, full).unwrap();
        assert!(
            (back / front - 4.0).abs() < 0.2,
            "RAID-5 small-write amplification ≈ 4x, got {}",
            back / front
        );
    }

    #[test]
    fn combine_blends_profiles() {
        let a = IoProfile {
            read_iops: 100.0,
            write_iops: 0.0,
            read_kb: 8.0,
            write_kb: 8.0,
            sequential_fraction: 0.0,
        };
        let b = IoProfile {
            read_iops: 100.0,
            write_iops: 100.0,
            read_kb: 64.0,
            write_kb: 64.0,
            sequential_fraction: 1.0,
        };
        let c = combine(a, b);
        assert_eq!(c.read_iops, 200.0);
        assert_eq!(c.write_iops, 100.0);
        assert!((c.read_kb - 36.0).abs() < 1e-9);
        assert!(c.sequential_fraction > 0.5 && c.sequential_fraction < 0.75);
        assert_eq!(combine(IoProfile::IDLE, IoProfile::IDLE).total_iops(), 0.0);
    }
}
