//! RAID levels, their I/O amplification and rebuild behaviour.
//!
//! The storage pools of the simulated subsystem stripe volume data across their member
//! disks according to a RAID level. The level determines how many physical I/Os a
//! logical read or write costs (write amplification is what makes RAID-5 pools so
//! sensitive to write-heavy interlopers) and how expensive a rebuild is after a disk
//! failure — the "RAID rebuild" fault of the paper's fault injector.

/// RAID level of a storage pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaidLevel {
    /// Striping only; no redundancy.
    Raid0,
    /// Mirroring: every write goes to two disks.
    Raid1,
    /// Striping with distributed parity: each small write costs 2 reads + 2 writes.
    Raid5,
    /// Striped mirrors.
    Raid10,
}

impl RaidLevel {
    /// Physical read operations caused by one logical read.
    pub fn read_amplification(self) -> f64 {
        // Reads are served from a single copy/stripe for every level.
        1.0
    }

    /// Physical I/O operations caused by one logical (small, random) write.
    pub fn write_amplification(self) -> f64 {
        match self {
            RaidLevel::Raid0 => 1.0,
            RaidLevel::Raid1 | RaidLevel::Raid10 => 2.0,
            // Read-modify-write of data + parity.
            RaidLevel::Raid5 => 4.0,
        }
    }

    /// Fraction of raw capacity usable for data.
    ///
    /// RAID-5 efficiency depends on the stripe width (`disks`).
    pub fn capacity_efficiency(self, disks: usize) -> f64 {
        match self {
            RaidLevel::Raid0 => 1.0,
            RaidLevel::Raid1 | RaidLevel::Raid10 => 0.5,
            RaidLevel::Raid5 => {
                if disks <= 1 {
                    1.0
                } else {
                    (disks as f64 - 1.0) / disks as f64
                }
            }
        }
    }

    /// Whether the level survives a single-disk failure.
    pub fn tolerates_disk_failure(self) -> bool {
        !matches!(self, RaidLevel::Raid0)
    }

    /// Multiplier applied to the pool's background load while a rebuild is in progress.
    ///
    /// A rebuild reads every surviving disk and writes the replacement, stealing a large
    /// share of the pool's throughput; 0.35 extra utilisation per disk is a conservative
    /// enterprise-controller default.
    pub fn rebuild_load_factor(self) -> f64 {
        match self {
            RaidLevel::Raid0 => 0.0,
            RaidLevel::Raid1 | RaidLevel::Raid10 => 0.25,
            RaidLevel::Raid5 => 0.4,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            RaidLevel::Raid0 => "RAID-0",
            RaidLevel::Raid1 => "RAID-1",
            RaidLevel::Raid5 => "RAID-5",
            RaidLevel::Raid10 => "RAID-10",
        }
    }
}

impl std::fmt::Display for RaidLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_amplification_ordering() {
        assert_eq!(RaidLevel::Raid0.write_amplification(), 1.0);
        assert_eq!(RaidLevel::Raid1.write_amplification(), 2.0);
        assert_eq!(RaidLevel::Raid10.write_amplification(), 2.0);
        assert_eq!(RaidLevel::Raid5.write_amplification(), 4.0);
        for level in [RaidLevel::Raid0, RaidLevel::Raid1, RaidLevel::Raid5, RaidLevel::Raid10] {
            assert_eq!(level.read_amplification(), 1.0);
        }
    }

    #[test]
    fn capacity_efficiency() {
        assert_eq!(RaidLevel::Raid0.capacity_efficiency(4), 1.0);
        assert_eq!(RaidLevel::Raid1.capacity_efficiency(2), 0.5);
        assert!((RaidLevel::Raid5.capacity_efficiency(6) - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(RaidLevel::Raid5.capacity_efficiency(1), 1.0);
    }

    #[test]
    fn failure_tolerance_and_rebuild() {
        assert!(!RaidLevel::Raid0.tolerates_disk_failure());
        assert!(RaidLevel::Raid5.tolerates_disk_failure());
        assert!(RaidLevel::Raid5.rebuild_load_factor() > RaidLevel::Raid10.rebuild_load_factor());
        assert_eq!(RaidLevel::Raid0.rebuild_load_factor(), 0.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(RaidLevel::Raid5.to_string(), "RAID-5");
        assert_eq!(RaidLevel::Raid10.name(), "RAID-10");
    }
}
