//! # diads-san
//!
//! A Storage Area Network simulator: the substrate that replaces the production IBM
//! SAN of the paper's testbed (*"Why Did My Query Slow Down?"*, CIDR 2009).
//!
//! The paper's DIADS prototype never talks to SAN hardware directly — it consumes the
//! configuration snapshots, performance time series and events that a storage
//! management tool (IBM TotalStorage Productivity Center) collects. This crate produces
//! exactly that data from a simulated SAN:
//!
//! * [`topology`] — servers, HBAs and their ports, FC switches, the storage subsystem,
//!   RAID pools, volumes and physical disks, plus the connectivity between them.
//!   Topology mutations (creating a volume, changing zoning or LUN mapping) emit the
//!   configuration events of Section 3.
//! * [`zoning`] — zone sets and LUN mapping/masking, the two settings whose
//!   misconfiguration drives scenario 1 of the evaluation.
//! * [`raid`] — RAID levels and their I/O amplification, plus rebuild penalties.
//! * [`workload`] — external application workloads (steady or bursty) that share the
//!   SAN with the database, the source of cross-volume contention.
//! * [`perf`] — the performance engine: an M/M/1-style queueing model per disk, load
//!   spread across a pool's disks, cross-volume contention through shared disks, and
//!   per-component metric emission into the monitoring store.
//! * [`path`] — I/O-path resolution used to build APG dependency paths (inner path:
//!   server → HBA → switches → subsystem → pool → volume → disks; outer path: volumes
//!   and workloads sharing those disks).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod path;
pub mod perf;
pub mod raid;
pub mod topology;
pub mod workload;
pub mod zoning;

pub use perf::{SanPerfConfig, SanSimulator, VolumeLoad};
pub use raid::RaidLevel;
pub use topology::{SanTopology, TopologyBuilder};
pub use workload::{BurstPattern, ExternalWorkload, IoProfile};
pub use zoning::{LunMapping, Zone, ZoningConfig};

/// Errors produced by the SAN layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SanError {
    /// A referenced component does not exist in the topology.
    UnknownComponent(String),
    /// An attempt to create a component whose name already exists.
    DuplicateComponent(String),
    /// An operation that requires a non-empty set (e.g. a pool with no disks).
    EmptySet(&'static str),
    /// A parameter was outside its valid domain.
    InvalidParameter(&'static str),
}

impl std::fmt::Display for SanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SanError::UnknownComponent(name) => write!(f, "unknown SAN component: {name}"),
            SanError::DuplicateComponent(name) => write!(f, "SAN component already exists: {name}"),
            SanError::EmptySet(what) => write!(f, "{what} must not be empty"),
            SanError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for SanError {}

/// Convenience result alias for the SAN layer.
pub type Result<T> = std::result::Result<T, SanError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        assert!(SanError::UnknownComponent("V9".into()).to_string().contains("V9"));
        assert!(SanError::DuplicateComponent("V1".into()).to_string().contains("V1"));
        assert!(SanError::EmptySet("pool disks").to_string().contains("pool disks"));
        assert!(SanError::InvalidParameter("iops").to_string().contains("iops"));
    }
}
