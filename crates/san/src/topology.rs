//! SAN topology: devices, logical entities, connectivity and configuration changes.
//!
//! The topology mirrors the taxonomy of Figure 1: servers with HBAs connect through FC
//! switches to a storage subsystem, whose physical disks are aggregated into RAID pools
//! from which logical volumes are carved and mapped to hosts. Every mutating operation
//! (creating a volume, changing zoning or LUN mapping, failing a disk, starting a RAID
//! rebuild) appends a configuration/system event to the topology's event log, which is
//! what DIADS later inspects.

use std::collections::BTreeMap;

use diads_monitor::{ComponentId, Event, EventKind, EventStore, Timestamp};

use crate::raid::RaidLevel;
use crate::zoning::{Zone, ZoningConfig};
use crate::{Result, SanError};

/// A host server.
#[derive(Debug, Clone, PartialEq)]
pub struct Server {
    /// Host name (e.g. `db-server`).
    pub name: String,
    /// Operating system label (informational, shown in APG renderings).
    pub os: String,
    /// Number of CPU cores.
    pub cpu_cores: u32,
    /// Clock speed per core in MHz.
    pub cpu_mhz_per_core: f64,
    /// Installed memory in MB.
    pub memory_mb: u64,
    /// Names of the HBAs installed in this server.
    pub hbas: Vec<String>,
}

/// A host bus adapter.
#[derive(Debug, Clone, PartialEq)]
pub struct Hba {
    /// HBA name (e.g. `db-server-hba0`).
    pub name: String,
    /// Owning server.
    pub server: String,
    /// Number of FC ports.
    pub ports: u32,
}

/// A fibre-channel switch.
#[derive(Debug, Clone, PartialEq)]
pub struct FcSwitch {
    /// Switch name.
    pub name: String,
    /// Number of ports.
    pub ports: u32,
    /// Aggregate bandwidth in MB/s.
    pub bandwidth_mb_per_sec: f64,
}

/// A storage subsystem (controller).
#[derive(Debug, Clone, PartialEq)]
pub struct StorageSubsystem {
    /// Subsystem name (e.g. `DS6000`).
    pub name: String,
    /// Model string.
    pub model: String,
    /// Controller cache in GB.
    pub cache_gb: u32,
}

/// A physical disk.
#[derive(Debug, Clone, PartialEq)]
pub struct Disk {
    /// Disk name (e.g. `disk-05`).
    pub name: String,
    /// Owning subsystem.
    pub subsystem: String,
    /// Capacity in GB.
    pub capacity_gb: u64,
    /// Maximum random IOPS the disk can sustain.
    pub max_random_iops: f64,
    /// Maximum sequential throughput in MB/s.
    pub max_seq_mb_per_sec: f64,
    /// Whether the disk has failed.
    pub failed: bool,
}

/// A RAID pool aggregating physical disks.
#[derive(Debug, Clone, PartialEq)]
pub struct StoragePool {
    /// Pool name (e.g. `P1`).
    pub name: String,
    /// Owning subsystem.
    pub subsystem: String,
    /// RAID level.
    pub raid: RaidLevel,
    /// Member disks.
    pub disks: Vec<String>,
}

/// A logical volume carved out of a pool.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageVolume {
    /// Volume name (e.g. `V1`).
    pub name: String,
    /// Owning pool.
    pub pool: String,
    /// Capacity in GB.
    pub capacity_gb: u64,
}

/// The full SAN topology plus its configuration/event history.
#[derive(Debug, Clone, Default)]
pub struct SanTopology {
    servers: BTreeMap<String, Server>,
    hbas: BTreeMap<String, Hba>,
    switches: BTreeMap<String, FcSwitch>,
    subsystems: BTreeMap<String, StorageSubsystem>,
    disks: BTreeMap<String, Disk>,
    pools: BTreeMap<String, StoragePool>,
    volumes: BTreeMap<String, StorageVolume>,
    /// Zoning and LUN mapping configuration.
    pub zoning: ZoningConfig,
    events: EventStore,
}

impl SanTopology {
    /// Creates an empty topology (use [`TopologyBuilder`] for convenient construction).
    pub fn new() -> Self {
        Self::default()
    }

    // ---- lookups ----

    /// A server by name.
    pub fn server(&self, name: &str) -> Option<&Server> {
        self.servers.get(name)
    }

    /// A volume by name.
    pub fn volume(&self, name: &str) -> Option<&StorageVolume> {
        self.volumes.get(name)
    }

    /// A pool by name.
    pub fn pool(&self, name: &str) -> Option<&StoragePool> {
        self.pools.get(name)
    }

    /// A disk by name.
    pub fn disk(&self, name: &str) -> Option<&Disk> {
        self.disks.get(name)
    }

    /// An HBA by name.
    pub fn hba(&self, name: &str) -> Option<&Hba> {
        self.hbas.get(name)
    }

    /// A switch by name.
    pub fn switch(&self, name: &str) -> Option<&FcSwitch> {
        self.switches.get(name)
    }

    /// A subsystem by name.
    pub fn subsystem(&self, name: &str) -> Option<&StorageSubsystem> {
        self.subsystems.get(name)
    }

    /// All server names.
    pub fn server_names(&self) -> Vec<String> {
        self.servers.keys().cloned().collect()
    }

    /// All volume names.
    pub fn volume_names(&self) -> Vec<String> {
        self.volumes.keys().cloned().collect()
    }

    /// All pool names.
    pub fn pool_names(&self) -> Vec<String> {
        self.pools.keys().cloned().collect()
    }

    /// All disk names.
    pub fn disk_names(&self) -> Vec<String> {
        self.disks.keys().cloned().collect()
    }

    /// All switch names.
    pub fn switch_names(&self) -> Vec<String> {
        self.switches.keys().cloned().collect()
    }

    /// All subsystem names.
    pub fn subsystem_names(&self) -> Vec<String> {
        self.subsystems.keys().cloned().collect()
    }

    /// All HBA names.
    pub fn hba_names(&self) -> Vec<String> {
        self.hbas.keys().cloned().collect()
    }

    /// The pool a volume lives in.
    pub fn pool_of_volume(&self, volume: &str) -> Option<&StoragePool> {
        self.volumes.get(volume).and_then(|v| self.pools.get(&v.pool))
    }

    /// The (non-failed) disks backing a volume.
    pub fn disks_of_volume(&self, volume: &str) -> Vec<&Disk> {
        self.pool_of_volume(volume)
            .map(|p| p.disks.iter().filter_map(|d| self.disks.get(d)).filter(|d| !d.failed).collect())
            .unwrap_or_default()
    }

    /// All volumes carved from a pool.
    pub fn volumes_in_pool(&self, pool: &str) -> Vec<&StorageVolume> {
        self.volumes.values().filter(|v| v.pool == pool).collect()
    }

    /// Other volumes that share physical disks with `volume` (same pool).
    pub fn volumes_sharing_disks(&self, volume: &str) -> Vec<String> {
        match self.volumes.get(volume) {
            Some(v) => self
                .volumes_in_pool(&v.pool)
                .into_iter()
                .filter(|o| o.name != volume)
                .map(|o| o.name.clone())
                .collect(),
            None => Vec::new(),
        }
    }

    /// The configuration/system event log.
    pub fn events(&self) -> &EventStore {
        &self.events
    }

    /// Records an event on the topology timeline.
    pub fn record_event(&mut self, event: Event) {
        self.events.record(event);
    }

    // ---- mutations that emit events ----

    /// Creates a new volume in an existing pool (emits [`EventKind::VolumeCreated`]).
    ///
    /// # Errors
    /// Fails if the pool does not exist or the volume name is already taken.
    pub fn create_volume(
        &mut self,
        time: Timestamp,
        name: impl Into<String>,
        pool: &str,
        capacity_gb: u64,
    ) -> Result<()> {
        let name = name.into();
        if self.volumes.contains_key(&name) {
            return Err(SanError::DuplicateComponent(name));
        }
        if !self.pools.contains_key(pool) {
            return Err(SanError::UnknownComponent(pool.to_string()));
        }
        self.volumes
            .insert(name.clone(), StorageVolume { name: name.clone(), pool: pool.to_string(), capacity_gb });
        self.events.record(Event::new(
            time,
            ComponentId::volume(name.clone()),
            EventKind::VolumeCreated,
            format!("volume {name} created in pool {pool}"),
        ));
        Ok(())
    }

    /// Adds a zone (emits [`EventKind::ZoningChanged`]).
    pub fn add_zone(&mut self, time: Timestamp, zone: Zone) {
        let detail = format!(
            "zone {} connects servers [{}] to subsystems [{}]",
            zone.name,
            zone.servers.iter().cloned().collect::<Vec<_>>().join(", "),
            zone.subsystems.iter().cloned().collect::<Vec<_>>().join(", ")
        );
        let subsystem = zone.subsystems.iter().next().cloned().unwrap_or_default();
        self.zoning.add_zone(zone);
        self.events.record(Event::new(
            time,
            ComponentId::new(diads_monitor::ComponentKind::StorageSubsystem, subsystem),
            EventKind::ZoningChanged,
            detail,
        ));
    }

    /// Maps a volume to a host (emits [`EventKind::LunMappingChanged`]).
    ///
    /// # Errors
    /// Fails if the volume or server does not exist.
    pub fn map_lun(&mut self, time: Timestamp, volume: &str, server: &str) -> Result<()> {
        if !self.volumes.contains_key(volume) {
            return Err(SanError::UnknownComponent(volume.to_string()));
        }
        if !self.servers.contains_key(server) {
            return Err(SanError::UnknownComponent(server.to_string()));
        }
        self.zoning.lun_mapping.map(volume, server);
        self.events.record(Event::new(
            time,
            ComponentId::volume(volume),
            EventKind::LunMappingChanged,
            format!("volume {volume} mapped to host {server}"),
        ));
        Ok(())
    }

    /// Marks a disk as failed (emits [`EventKind::DiskFailure`]).
    ///
    /// # Errors
    /// Fails if the disk does not exist.
    pub fn fail_disk(&mut self, time: Timestamp, disk: &str) -> Result<()> {
        let d = self.disks.get_mut(disk).ok_or_else(|| SanError::UnknownComponent(disk.to_string()))?;
        d.failed = true;
        self.events.record(Event::new(
            time,
            ComponentId::disk(disk),
            EventKind::DiskFailure,
            format!("disk {disk} failed"),
        ));
        Ok(())
    }

    /// Emits the RAID-rebuild-started event for a pool (the performance impact is
    /// modelled by the perf engine's rebuild windows).
    ///
    /// # Errors
    /// Fails if the pool does not exist.
    pub fn start_raid_rebuild(&mut self, time: Timestamp, pool: &str) -> Result<()> {
        if !self.pools.contains_key(pool) {
            return Err(SanError::UnknownComponent(pool.to_string()));
        }
        self.events.record(Event::new(
            time,
            ComponentId::pool(pool),
            EventKind::RaidRebuildStarted,
            format!("RAID rebuild started on pool {pool}"),
        ));
        Ok(())
    }

    // ---- component-id helpers ----

    /// The monitored component ids of every entity in the topology.
    pub fn all_component_ids(&self) -> Vec<ComponentId> {
        use diads_monitor::ComponentKind as K;
        let mut out = Vec::new();
        out.extend(self.servers.keys().map(|n| ComponentId::new(K::Server, n.clone())));
        out.extend(self.hbas.keys().map(|n| ComponentId::new(K::Hba, n.clone())));
        out.extend(self.switches.keys().map(|n| ComponentId::new(K::FcSwitch, n.clone())));
        out.extend(self.subsystems.keys().map(|n| ComponentId::new(K::StorageSubsystem, n.clone())));
        out.extend(self.pools.keys().map(|n| ComponentId::new(K::StoragePool, n.clone())));
        out.extend(self.volumes.keys().map(|n| ComponentId::new(K::StorageVolume, n.clone())));
        out.extend(self.disks.keys().map(|n| ComponentId::new(K::Disk, n.clone())));
        out
    }
}

/// Fluent builder for [`SanTopology`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    topology: SanTopology,
}

impl TopologyBuilder {
    /// Starts an empty build.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a server.
    pub fn server(
        mut self,
        name: &str,
        os: &str,
        cpu_cores: u32,
        cpu_mhz_per_core: f64,
        memory_mb: u64,
    ) -> Self {
        self.topology.servers.insert(
            name.to_string(),
            Server {
                name: name.to_string(),
                os: os.to_string(),
                cpu_cores,
                cpu_mhz_per_core,
                memory_mb,
                hbas: Vec::new(),
            },
        );
        self
    }

    /// Adds an HBA to an existing server.
    pub fn hba(mut self, name: &str, server: &str, ports: u32) -> Self {
        self.topology
            .hbas
            .insert(name.to_string(), Hba { name: name.to_string(), server: server.to_string(), ports });
        if let Some(s) = self.topology.servers.get_mut(server) {
            s.hbas.push(name.to_string());
        }
        self
    }

    /// Adds an FC switch.
    pub fn switch(mut self, name: &str, ports: u32, bandwidth_mb_per_sec: f64) -> Self {
        self.topology
            .switches
            .insert(name.to_string(), FcSwitch { name: name.to_string(), ports, bandwidth_mb_per_sec });
        self
    }

    /// Adds a storage subsystem.
    pub fn subsystem(mut self, name: &str, model: &str, cache_gb: u32) -> Self {
        self.topology.subsystems.insert(
            name.to_string(),
            StorageSubsystem { name: name.to_string(), model: model.to_string(), cache_gb },
        );
        self
    }

    /// Adds `count` identical disks named `{prefix}-NN` to a subsystem and returns their names.
    pub fn disks(
        mut self,
        prefix: &str,
        count: usize,
        subsystem: &str,
        capacity_gb: u64,
        max_random_iops: f64,
        max_seq_mb_per_sec: f64,
    ) -> Self {
        for i in 1..=count {
            let name = format!("{prefix}-{i:02}");
            self.topology.disks.insert(
                name.clone(),
                Disk {
                    name,
                    subsystem: subsystem.to_string(),
                    capacity_gb,
                    max_random_iops,
                    max_seq_mb_per_sec,
                    failed: false,
                },
            );
        }
        self
    }

    /// Adds a RAID pool over existing disks.
    pub fn pool(mut self, name: &str, subsystem: &str, raid: RaidLevel, disks: &[&str]) -> Self {
        self.topology.pools.insert(
            name.to_string(),
            StoragePool {
                name: name.to_string(),
                subsystem: subsystem.to_string(),
                raid,
                disks: disks.iter().map(|d| d.to_string()).collect(),
            },
        );
        self
    }

    /// Adds a volume to an existing pool.
    pub fn volume(mut self, name: &str, pool: &str, capacity_gb: u64) -> Self {
        self.topology.volumes.insert(
            name.to_string(),
            StorageVolume { name: name.to_string(), pool: pool.to_string(), capacity_gb },
        );
        self
    }

    /// Adds a zone.
    pub fn zone(mut self, name: &str, servers: &[&str], subsystems: &[&str]) -> Self {
        self.topology.zoning.add_zone(Zone::new(
            name,
            servers.iter().map(|s| s.to_string()),
            subsystems.iter().map(|s| s.to_string()),
        ));
        self
    }

    /// Maps a volume to a server.
    pub fn lun(mut self, volume: &str, server: &str) -> Self {
        self.topology.zoning.lun_mapping.map(volume, server);
        self
    }

    /// Finalises the build after validating referential integrity.
    ///
    /// # Errors
    /// Returns an error if any HBA, pool, volume or LUN mapping references a missing
    /// component, or a pool has no disks.
    pub fn build(self) -> Result<SanTopology> {
        let t = &self.topology;
        for hba in t.hbas.values() {
            if !t.servers.contains_key(&hba.server) {
                return Err(SanError::UnknownComponent(hba.server.clone()));
            }
        }
        for pool in t.pools.values() {
            if !t.subsystems.contains_key(&pool.subsystem) {
                return Err(SanError::UnknownComponent(pool.subsystem.clone()));
            }
            if pool.disks.is_empty() {
                return Err(SanError::EmptySet("pool disks"));
            }
            for d in &pool.disks {
                if !t.disks.contains_key(d) {
                    return Err(SanError::UnknownComponent(d.clone()));
                }
            }
        }
        for vol in t.volumes.values() {
            if !t.pools.contains_key(&vol.pool) {
                return Err(SanError::UnknownComponent(vol.pool.clone()));
            }
        }
        Ok(self.topology)
    }
}

/// The Figure-1 testbed: a Red Hat Linux database server with one dual-port HBA,
/// two FC switches, an IBM DS6000-class controller with two pools — P1 (disks
/// ds-01..ds-04) holding volume V1 and P2 (disks ds-05..ds-10) holding volumes V2, V3
/// and V4 — plus a second application server that external workloads run on.
pub fn paper_testbed() -> SanTopology {
    TopologyBuilder::new()
        .server("db-server", "Red Hat Enterprise Linux", 8, 2400.0, 32_768)
        .server("app-server", "Red Hat Enterprise Linux", 8, 2400.0, 16_384)
        .hba("db-server-hba0", "db-server", 2)
        .hba("app-server-hba0", "app-server", 2)
        .switch("fc-switch-edge", 32, 4096.0)
        .switch("fc-switch-core", 64, 8192.0)
        .subsystem("DS6000", "IBM TotalStorage DS6800", 4)
        .disks("ds", 10, "DS6000", 300, 160.0, 90.0)
        .pool("P1", "DS6000", RaidLevel::Raid5, &["ds-01", "ds-02", "ds-03", "ds-04"])
        .pool("P2", "DS6000", RaidLevel::Raid5, &["ds-05", "ds-06", "ds-07", "ds-08", "ds-09", "ds-10"])
        .volume("V1", "P1", 200)
        .volume("V2", "P2", 600)
        .volume("V3", "P2", 200)
        .volume("V4", "P2", 200)
        .zone("db-zone", &["db-server"], &["DS6000"])
        .zone("app-zone", &["app-server"], &["DS6000"])
        .lun("V1", "db-server")
        .lun("V2", "db-server")
        .lun("V3", "app-server")
        .lun("V4", "app-server")
        .build()
        .expect("paper testbed is internally consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_structure() {
        let t = paper_testbed();
        assert_eq!(t.server_names().len(), 2);
        assert_eq!(t.volume_names(), vec!["V1", "V2", "V3", "V4"]);
        assert_eq!(t.pool_names(), vec!["P1", "P2"]);
        assert_eq!(t.disk_names().len(), 10);
        assert_eq!(t.pool_of_volume("V1").unwrap().name, "P1");
        assert_eq!(t.pool_of_volume("V2").unwrap().name, "P2");
        assert_eq!(t.disks_of_volume("V2").len(), 6);
        assert_eq!(t.disks_of_volume("V1").len(), 4);
        // V2 shares P2's disks with V3 and V4 — its outer dependency path in Figure 1.
        assert_eq!(t.volumes_sharing_disks("V2"), vec!["V3", "V4"]);
        assert!(t.volumes_sharing_disks("V1").is_empty());
        assert!(t.zoning.can_access("db-server", "DS6000", "V1"));
        assert!(!t.zoning.can_access("app-server", "DS6000", "V1"));
        assert_eq!(t.all_component_ids().len(), 2 + 2 + 2 + 1 + 2 + 4 + 10);
    }

    #[test]
    fn builder_validates_references() {
        let bad_pool = TopologyBuilder::new()
            .subsystem("S", "model", 1)
            .pool("P1", "S", RaidLevel::Raid0, &["missing-disk"])
            .build();
        assert!(matches!(bad_pool, Err(SanError::UnknownComponent(_))));

        let empty_pool =
            TopologyBuilder::new().subsystem("S", "model", 1).pool("P1", "S", RaidLevel::Raid0, &[]).build();
        assert!(matches!(empty_pool, Err(SanError::EmptySet(_))));

        let bad_volume = TopologyBuilder::new()
            .subsystem("S", "model", 1)
            .disks("d", 2, "S", 100, 100.0, 50.0)
            .pool("P1", "S", RaidLevel::Raid0, &["d-01", "d-02"])
            .volume("V1", "NOPOOL", 10)
            .build();
        assert!(bad_volume.is_err());

        let bad_hba = TopologyBuilder::new().hba("h0", "missing-server", 2).build();
        assert!(bad_hba.is_err());
    }

    #[test]
    fn create_volume_emits_event_and_validates() {
        let mut t = paper_testbed();
        assert!(t.create_volume(Timestamp::new(100), "Vprime", "P1", 50).is_ok());
        assert_eq!(t.volumes_sharing_disks("V1"), vec!["Vprime"]);
        assert!(matches!(
            t.create_volume(Timestamp::new(101), "Vprime", "P1", 50),
            Err(SanError::DuplicateComponent(_))
        ));
        assert!(matches!(
            t.create_volume(Timestamp::new(102), "V9", "NOPOOL", 50),
            Err(SanError::UnknownComponent(_))
        ));
        let events = t.events().of_kind(&EventKind::VolumeCreated);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].time, Timestamp::new(100));
    }

    #[test]
    fn zoning_and_lun_mutations_emit_events() {
        let mut t = paper_testbed();
        t.create_volume(Timestamp::new(10), "Vprime", "P1", 50).unwrap();
        t.add_zone(
            Timestamp::new(11),
            Zone::new("etl-zone", vec!["app-server".into()], vec!["DS6000".into()]),
        );
        t.map_lun(Timestamp::new(12), "Vprime", "app-server").unwrap();
        assert!(t.zoning.can_access("app-server", "DS6000", "Vprime"));
        assert_eq!(t.events().of_kind(&EventKind::ZoningChanged).len(), 1);
        assert_eq!(t.events().of_kind(&EventKind::LunMappingChanged).len(), 1);
        assert!(t.map_lun(Timestamp::new(13), "missing", "app-server").is_err());
        assert!(t.map_lun(Timestamp::new(13), "V1", "missing").is_err());
    }

    #[test]
    fn disk_failure_and_rebuild_events() {
        let mut t = paper_testbed();
        t.fail_disk(Timestamp::new(5), "ds-03").unwrap();
        assert!(t.disk("ds-03").unwrap().failed);
        assert_eq!(t.disks_of_volume("V1").len(), 3);
        t.start_raid_rebuild(Timestamp::new(6), "P1").unwrap();
        assert_eq!(t.events().len(), 2);
        assert!(t.fail_disk(Timestamp::new(7), "no-disk").is_err());
        assert!(t.start_raid_rebuild(Timestamp::new(7), "no-pool").is_err());
    }

    #[test]
    fn lookups_return_none_for_missing() {
        let t = paper_testbed();
        assert!(t.volume("V9").is_none());
        assert!(t.pool_of_volume("V9").is_none());
        assert!(t.disks_of_volume("V9").is_empty());
        assert!(t.server("nobody").is_none());
        assert!(t.switch("sw9").is_none());
        assert!(t.subsystem("X").is_none());
        assert!(t.hba("h9").is_none());
        assert!(t.disk("d9").is_none());
    }
}
