//! External application workloads sharing the SAN.
//!
//! Enterprise SANs are consolidated: the database's volumes share switches, controller
//! ports and — crucially for scenario 1 — physical disks with other applications.
//! An [`ExternalWorkload`] describes the I/O an external application pushes onto a
//! volume over a window of time, with an optional bursty shape (scenario "1b" adds a
//! *bursty* load on V2 that raises its metrics without really hurting the query).

use diads_monitor::{TimeRange, Timestamp};

/// The steady-state I/O intensity of a workload against one volume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoProfile {
    /// Read operations per second.
    pub read_iops: f64,
    /// Write operations per second.
    pub write_iops: f64,
    /// Average read transfer size in KB.
    pub read_kb: f64,
    /// Average write transfer size in KB.
    pub write_kb: f64,
    /// Fraction of I/O that is sequential (0..1).
    pub sequential_fraction: f64,
}

impl IoProfile {
    /// A profile with no I/O at all.
    pub const IDLE: IoProfile =
        IoProfile { read_iops: 0.0, write_iops: 0.0, read_kb: 8.0, write_kb: 8.0, sequential_fraction: 0.0 };

    /// A random-I/O OLTP-style profile.
    pub fn oltp(read_iops: f64, write_iops: f64) -> Self {
        IoProfile { read_iops, write_iops, read_kb: 8.0, write_kb: 8.0, sequential_fraction: 0.1 }
    }

    /// A sequential batch/ETL-style profile (large transfers, mostly writes).
    pub fn batch_write(write_iops: f64) -> Self {
        IoProfile {
            read_iops: write_iops * 0.1,
            write_iops,
            read_kb: 64.0,
            write_kb: 64.0,
            sequential_fraction: 0.7,
        }
    }

    /// Total operations per second.
    pub fn total_iops(&self) -> f64 {
        self.read_iops + self.write_iops
    }

    /// Scales both rates by a factor.
    pub fn scaled(&self, factor: f64) -> IoProfile {
        IoProfile { read_iops: self.read_iops * factor, write_iops: self.write_iops * factor, ..*self }
    }
}

/// How a workload's intensity varies over time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BurstPattern {
    /// Constant intensity for the whole active window.
    Steady,
    /// Periodic bursts: for each `period_secs` window the workload runs at
    /// `multiplier ×` its base profile for the first `burst_secs`, and at the base
    /// profile (possibly zero, see `idle_fraction`) for the rest.
    Bursty {
        /// Length of one burst cycle in seconds.
        period_secs: u64,
        /// Length of the high-intensity phase at the start of each cycle.
        burst_secs: u64,
        /// Intensity multiplier during the burst phase.
        multiplier: f64,
        /// Fraction of the base profile that remains between bursts (0 = fully idle).
        idle_fraction: f64,
    },
}

impl BurstPattern {
    /// Intensity multiplier at an instant, relative to the base profile.
    pub fn intensity_at(&self, t: Timestamp, window_start: Timestamp) -> f64 {
        match *self {
            BurstPattern::Steady => 1.0,
            BurstPattern::Bursty { period_secs, burst_secs, multiplier, idle_fraction } => {
                let period = period_secs.max(1);
                let offset = t.as_secs().saturating_sub(window_start.as_secs()) % period;
                if offset < burst_secs {
                    multiplier
                } else {
                    idle_fraction
                }
            }
        }
    }
}

/// An external application workload against one volume over one time window.
#[derive(Debug, Clone, PartialEq)]
pub struct ExternalWorkload {
    /// Workload name (e.g. `etl-on-vprime`).
    pub name: String,
    /// The server the workload runs on.
    pub server: String,
    /// The volume the workload targets.
    pub volume: String,
    /// Base I/O intensity.
    pub profile: IoProfile,
    /// Temporal shape of the intensity.
    pub pattern: BurstPattern,
    /// Window during which the workload is active.
    pub active: TimeRange,
}

impl ExternalWorkload {
    /// Creates a steady workload.
    pub fn steady(
        name: impl Into<String>,
        server: impl Into<String>,
        volume: impl Into<String>,
        profile: IoProfile,
        active: TimeRange,
    ) -> Self {
        ExternalWorkload {
            name: name.into(),
            server: server.into(),
            volume: volume.into(),
            profile,
            pattern: BurstPattern::Steady,
            active,
        }
    }

    /// Creates a bursty workload.
    pub fn bursty(
        name: impl Into<String>,
        server: impl Into<String>,
        volume: impl Into<String>,
        profile: IoProfile,
        pattern: BurstPattern,
        active: TimeRange,
    ) -> Self {
        ExternalWorkload {
            name: name.into(),
            server: server.into(),
            volume: volume.into(),
            profile,
            pattern,
            active,
        }
    }

    /// Whether the workload is active at the given instant.
    pub fn is_active_at(&self, t: Timestamp) -> bool {
        self.active.contains(t)
    }

    /// The effective I/O profile at an instant (zero when inactive).
    pub fn profile_at(&self, t: Timestamp) -> IoProfile {
        if !self.is_active_at(t) {
            return IoProfile::IDLE;
        }
        self.profile.scaled(self.pattern.intensity_at(t, self.active.start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diads_monitor::Duration;

    fn window(start: u64, secs: u64) -> TimeRange {
        TimeRange::with_duration(Timestamp::new(start), Duration::from_secs(secs))
    }

    #[test]
    fn profiles() {
        let p = IoProfile::oltp(100.0, 50.0);
        assert_eq!(p.total_iops(), 150.0);
        let scaled = p.scaled(2.0);
        assert_eq!(scaled.read_iops, 200.0);
        assert_eq!(scaled.write_iops, 100.0);
        assert_eq!(scaled.read_kb, p.read_kb);
        let b = IoProfile::batch_write(200.0);
        assert!(b.write_iops > b.read_iops);
        assert!(b.sequential_fraction > 0.5);
        assert_eq!(IoProfile::IDLE.total_iops(), 0.0);
    }

    #[test]
    fn steady_pattern_is_constant() {
        let p = BurstPattern::Steady;
        assert_eq!(p.intensity_at(Timestamp::new(0), Timestamp::new(0)), 1.0);
        assert_eq!(p.intensity_at(Timestamp::new(12345), Timestamp::new(0)), 1.0);
    }

    #[test]
    fn bursty_pattern_cycles() {
        let p =
            BurstPattern::Bursty { period_secs: 100, burst_secs: 20, multiplier: 5.0, idle_fraction: 0.0 };
        let start = Timestamp::new(1000);
        assert_eq!(p.intensity_at(Timestamp::new(1000), start), 5.0);
        assert_eq!(p.intensity_at(Timestamp::new(1019), start), 5.0);
        assert_eq!(p.intensity_at(Timestamp::new(1020), start), 0.0);
        assert_eq!(p.intensity_at(Timestamp::new(1099), start), 0.0);
        assert_eq!(p.intensity_at(Timestamp::new(1100), start), 5.0);
    }

    #[test]
    fn bursty_average_load_is_duty_cycle() {
        let p =
            BurstPattern::Bursty { period_secs: 100, burst_secs: 25, multiplier: 4.0, idle_fraction: 0.0 };
        let start = Timestamp::new(0);
        let avg: f64 = (0..1000).map(|t| p.intensity_at(Timestamp::new(t), start)).sum::<f64>() / 1000.0;
        assert!((avg - 1.0).abs() < 0.05, "25% duty at 4x ≈ 1x average, got {avg}");
    }

    #[test]
    fn workload_active_window_and_profile() {
        let w = ExternalWorkload::steady(
            "etl",
            "app-server",
            "V3",
            IoProfile::oltp(100.0, 100.0),
            window(1000, 500),
        );
        assert!(!w.is_active_at(Timestamp::new(999)));
        assert!(w.is_active_at(Timestamp::new(1000)));
        assert!(w.is_active_at(Timestamp::new(1499)));
        assert!(!w.is_active_at(Timestamp::new(1500)));
        assert_eq!(w.profile_at(Timestamp::new(100)).total_iops(), 0.0);
        assert_eq!(w.profile_at(Timestamp::new(1200)).total_iops(), 200.0);
    }

    #[test]
    fn bursty_workload_profile_scales() {
        let w = ExternalWorkload::bursty(
            "burst",
            "app-server",
            "V2",
            IoProfile::batch_write(100.0),
            BurstPattern::Bursty { period_secs: 60, burst_secs: 10, multiplier: 3.0, idle_fraction: 0.1 },
            window(0, 600),
        );
        let during_burst = w.profile_at(Timestamp::new(5));
        let between = w.profile_at(Timestamp::new(30));
        assert!(during_burst.write_iops > between.write_iops * 10.0);
    }
}
