//! The database catalog: tables, indexes, tablespaces and their mapping to SAN volumes.
//!
//! Section 3.1.2 explains how the APG bridges the two layers: the database
//! configuration maps each tablespace to SAN storage either through a file system on a
//! volume (System Managed Storage) or a raw volume (Database Managed Storage); each
//! operator touches tables, tables belong to tablespaces, and tablespaces resolve to
//! volumes — so every operator can be mapped to the SAN components it depends on.
//!
//! The catalog also carries the *data properties* (row counts, average row widths,
//! basic selectivity statistics) that both the optimizer's statistics snapshot and the
//! executor's "actual" record counts derive from. Bulk DML faults mutate these
//! properties, which is how scenarios 3 and 4 change record counts (and possibly plans).

use std::collections::BTreeMap;

use crate::{DbError, Result};

/// How a tablespace is bound to SAN storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageKind {
    /// System Managed Storage: a file system created on a SAN volume.
    SystemManaged,
    /// Database Managed Storage: a raw SAN volume managed by the database.
    DatabaseManaged,
}

impl std::fmt::Display for StorageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageKind::SystemManaged => f.write_str("SMS"),
            StorageKind::DatabaseManaged => f.write_str("DMS"),
        }
    }
}

/// A tablespace and the SAN volume backing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tablespace {
    /// Tablespace name.
    pub name: String,
    /// Name of the SAN volume backing the tablespace.
    pub volume: String,
    /// SMS or DMS binding.
    pub storage: StorageKind,
}

/// A table and its data properties.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Owning tablespace.
    pub tablespace: String,
    /// Current number of rows.
    pub row_count: u64,
    /// Average row width in bytes.
    pub avg_row_bytes: u32,
    /// Fraction of the table that matches a "typical" predicate of the workload; bulk
    /// DML faults change it to alter intermediate result sizes without re-deriving real
    /// value distributions.
    pub predicate_selectivity: f64,
    /// Physical clustering factor in `[0, 1]`: 1 means index order matches physical
    /// order (cheap index scans), 0 means fully scattered.
    pub clustering: f64,
}

impl Table {
    /// Number of 8 KB heap pages the table occupies.
    pub fn pages(&self) -> u64 {
        let bytes = self.row_count * self.avg_row_bytes as u64;
        (bytes / 8192).max(1)
    }
}

/// A secondary index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Index {
    /// Index name.
    pub name: String,
    /// Indexed table.
    pub table: String,
    /// Indexed column (informational).
    pub column: String,
    /// Whether the index enforces uniqueness.
    pub unique: bool,
}

/// A snapshot of the statistics the optimizer planned with (per table: row count and
/// selectivity). Plans remember the snapshot so estimated record counts stay frozen at
/// planning time even as the live catalog changes — exactly the drift module CR detects.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsSnapshot {
    rows: BTreeMap<String, u64>,
    selectivity: BTreeMap<String, f64>,
}

impl StatsSnapshot {
    /// Estimated row count of a table (0 if the table was unknown at snapshot time).
    pub fn row_count(&self, table: &str) -> u64 {
        self.rows.get(table).copied().unwrap_or(0)
    }

    /// Estimated predicate selectivity of a table (1.0 if unknown).
    pub fn selectivity(&self, table: &str) -> f64 {
        self.selectivity.get(table).copied().unwrap_or(1.0)
    }
}

/// The catalog: tables, indexes and tablespaces.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
    indexes: BTreeMap<String, Index>,
    tablespaces: BTreeMap<String, Tablespace>,
    /// Definitions of dropped indexes, keyed by name — the remediation planner
    /// reads these to propose recreating an index a fault (or an operator)
    /// dropped. Re-adding an index with [`Catalog::add_index`] clears its
    /// tombstone.
    dropped_indexes: BTreeMap<String, Index>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a tablespace.
    ///
    /// # Errors
    /// Fails if a tablespace with the same name exists.
    pub fn add_tablespace(&mut self, ts: Tablespace) -> Result<()> {
        if self.tablespaces.contains_key(&ts.name) {
            return Err(DbError::DuplicateObject(ts.name));
        }
        self.tablespaces.insert(ts.name.clone(), ts);
        Ok(())
    }

    /// Adds a table.
    ///
    /// # Errors
    /// Fails if the table exists already or its tablespace is unknown.
    pub fn add_table(&mut self, table: Table) -> Result<()> {
        if self.tables.contains_key(&table.name) {
            return Err(DbError::DuplicateObject(table.name));
        }
        if !self.tablespaces.contains_key(&table.tablespace) {
            return Err(DbError::UnknownObject(table.tablespace));
        }
        self.tables.insert(table.name.clone(), table);
        Ok(())
    }

    /// Adds an index.
    ///
    /// # Errors
    /// Fails if the index exists already or its table is unknown.
    pub fn add_index(&mut self, index: Index) -> Result<()> {
        if self.indexes.contains_key(&index.name) {
            return Err(DbError::DuplicateObject(index.name));
        }
        if !self.tables.contains_key(&index.table) {
            return Err(DbError::UnknownObject(index.table));
        }
        self.dropped_indexes.remove(&index.name);
        self.indexes.insert(index.name.clone(), index);
        Ok(())
    }

    /// Drops an index (used by the index-drop fault and module PD's analysis). The
    /// dropped definition is retained as a tombstone (see
    /// [`Catalog::dropped_index`]) so a recreate-index remediation can restore it.
    ///
    /// # Errors
    /// Fails if the index does not exist.
    pub fn drop_index(&mut self, name: &str) -> Result<Index> {
        let index = self.indexes.remove(name).ok_or_else(|| DbError::UnknownObject(name.to_string()))?;
        self.dropped_indexes.insert(name.to_string(), index.clone());
        Ok(index)
    }

    /// The retained definition of a dropped index, if one was dropped under this
    /// name (and not since re-added).
    pub fn dropped_index(&self, name: &str) -> Option<&Index> {
        self.dropped_indexes.get(name)
    }

    /// Names of every dropped index whose definition is still retained.
    pub fn dropped_index_names(&self) -> Vec<String> {
        self.dropped_indexes.keys().cloned().collect()
    }

    /// A table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Mutable access to a table (bulk DML faults use this to change data properties).
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// An index by name.
    pub fn index(&self, name: &str) -> Option<&Index> {
        self.indexes.get(name)
    }

    /// Whether any index exists on the given table.
    pub fn has_index_on(&self, table: &str) -> bool {
        self.indexes.values().any(|i| i.table == table)
    }

    /// A tablespace by name.
    pub fn tablespace(&self, name: &str) -> Option<&Tablespace> {
        self.tablespaces.get(name)
    }

    /// All table names.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// All index names.
    pub fn index_names(&self) -> Vec<String> {
        self.indexes.keys().cloned().collect()
    }

    /// All tablespace names.
    pub fn tablespace_names(&self) -> Vec<String> {
        self.tablespaces.keys().cloned().collect()
    }

    /// Re-points a tablespace at a different volume (the what-if "move tablespace"
    /// change). Tables, indexes and dropped-index tombstones are untouched.
    ///
    /// # Errors
    /// Fails if the tablespace does not exist.
    pub fn move_tablespace(&mut self, name: &str, to_volume: &str) -> Result<()> {
        let ts = self.tablespaces.get_mut(name).ok_or_else(|| DbError::UnknownObject(name.to_string()))?;
        ts.volume = to_volume.to_string();
        Ok(())
    }

    /// The SAN volume a table's data lives on (via its tablespace).
    pub fn volume_of_table(&self, table: &str) -> Option<String> {
        let t = self.tables.get(table)?;
        self.tablespaces.get(&t.tablespace).map(|ts| ts.volume.clone())
    }

    /// Every table stored (via its tablespace) on the given volume.
    pub fn tables_on_volume(&self, volume: &str) -> Vec<String> {
        self.tables
            .values()
            .filter(|t| self.tablespaces.get(&t.tablespace).map(|ts| ts.volume == volume).unwrap_or(false))
            .map(|t| t.name.clone())
            .collect()
    }

    /// Takes a statistics snapshot of the current data properties (what ANALYZE would
    /// capture and the optimizer would plan with).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            rows: self.tables.values().map(|t| (t.name.clone(), t.row_count)).collect(),
            selectivity: self.tables.values().map(|t| (t.name.clone(), t.predicate_selectivity)).collect(),
        }
    }

    /// Applies a bulk data-property change to a table: scales its row count and replaces
    /// its predicate selectivity. Returns the table's new row count.
    ///
    /// # Errors
    /// Fails if the table does not exist or parameters are out of range.
    pub fn apply_bulk_dml(&mut self, table: &str, row_factor: f64, new_selectivity: f64) -> Result<u64> {
        if row_factor < 0.0 || !(0.0..=1.0).contains(&new_selectivity) {
            return Err(DbError::InvalidParameter("row factor must be >= 0 and selectivity in [0, 1]"));
        }
        let t = self.tables.get_mut(table).ok_or_else(|| DbError::UnknownObject(table.to_string()))?;
        t.row_count = ((t.row_count as f64) * row_factor).round() as u64;
        t.predicate_selectivity = new_selectivity;
        Ok(t.row_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_tablespace(Tablespace {
            name: "ts_a".into(),
            volume: "V1".into(),
            storage: StorageKind::SystemManaged,
        })
        .unwrap();
        c.add_tablespace(Tablespace {
            name: "ts_b".into(),
            volume: "V2".into(),
            storage: StorageKind::DatabaseManaged,
        })
        .unwrap();
        c.add_table(Table {
            name: "orders".into(),
            tablespace: "ts_a".into(),
            row_count: 1_000_000,
            avg_row_bytes: 120,
            predicate_selectivity: 0.1,
            clustering: 0.8,
        })
        .unwrap();
        c.add_table(Table {
            name: "customer".into(),
            tablespace: "ts_b".into(),
            row_count: 150_000,
            avg_row_bytes: 180,
            predicate_selectivity: 0.2,
            clustering: 0.9,
        })
        .unwrap();
        c.add_index(Index {
            name: "orders_pk".into(),
            table: "orders".into(),
            column: "o_orderkey".into(),
            unique: true,
        })
        .unwrap();
        c
    }

    #[test]
    fn referential_integrity() {
        let mut c = small_catalog();
        assert!(matches!(
            c.add_table(Table {
                name: "lineitem".into(),
                tablespace: "missing".into(),
                row_count: 1,
                avg_row_bytes: 1,
                predicate_selectivity: 1.0,
                clustering: 1.0,
            }),
            Err(DbError::UnknownObject(_))
        ));
        assert!(matches!(
            c.add_index(Index {
                name: "x".into(),
                table: "missing".into(),
                column: "c".into(),
                unique: false
            }),
            Err(DbError::UnknownObject(_))
        ));
        assert!(matches!(
            c.add_tablespace(Tablespace {
                name: "ts_a".into(),
                volume: "V9".into(),
                storage: StorageKind::SystemManaged
            }),
            Err(DbError::DuplicateObject(_))
        ));
        assert!(matches!(
            c.add_table(Table {
                name: "orders".into(),
                tablespace: "ts_a".into(),
                row_count: 1,
                avg_row_bytes: 1,
                predicate_selectivity: 1.0,
                clustering: 1.0,
            }),
            Err(DbError::DuplicateObject(_))
        ));
    }

    #[test]
    fn operator_to_volume_mapping() {
        let c = small_catalog();
        assert_eq!(c.volume_of_table("orders").unwrap(), "V1");
        assert_eq!(c.volume_of_table("customer").unwrap(), "V2");
        assert_eq!(c.volume_of_table("missing"), None);
        assert_eq!(c.tables_on_volume("V1"), vec!["orders"]);
        assert_eq!(c.tables_on_volume("V2"), vec!["customer"]);
        assert!(c.tables_on_volume("V9").is_empty());
    }

    #[test]
    fn pages_are_derived_from_rows_and_width() {
        let c = small_catalog();
        let orders = c.table("orders").unwrap();
        assert_eq!(orders.pages(), 1_000_000 * 120 / 8192);
        // Tiny tables occupy at least one page.
        let tiny = Table {
            name: "region".into(),
            tablespace: "ts_a".into(),
            row_count: 5,
            avg_row_bytes: 100,
            predicate_selectivity: 1.0,
            clustering: 1.0,
        };
        assert_eq!(tiny.pages(), 1);
    }

    #[test]
    fn snapshot_freezes_stats() {
        let mut c = small_catalog();
        let snap = c.snapshot();
        c.apply_bulk_dml("orders", 3.0, 0.6).unwrap();
        assert_eq!(snap.row_count("orders"), 1_000_000);
        assert_eq!(c.table("orders").unwrap().row_count, 3_000_000);
        assert_eq!(snap.selectivity("orders"), 0.1);
        assert_eq!(c.table("orders").unwrap().predicate_selectivity, 0.6);
        // Unknown tables degrade gracefully.
        assert_eq!(snap.row_count("nope"), 0);
        assert_eq!(snap.selectivity("nope"), 1.0);
    }

    #[test]
    fn bulk_dml_validation() {
        let mut c = small_catalog();
        assert!(c.apply_bulk_dml("missing", 2.0, 0.5).is_err());
        assert!(c.apply_bulk_dml("orders", -1.0, 0.5).is_err());
        assert!(c.apply_bulk_dml("orders", 1.0, 1.5).is_err());
        assert_eq!(c.apply_bulk_dml("orders", 0.5, 0.05).unwrap(), 500_000);
    }

    #[test]
    fn index_lifecycle() {
        let mut c = small_catalog();
        assert!(c.has_index_on("orders"));
        assert!(!c.has_index_on("customer"));
        let dropped = c.drop_index("orders_pk").unwrap();
        assert_eq!(dropped.table, "orders");
        assert!(!c.has_index_on("orders"));
        assert!(c.drop_index("orders_pk").is_err());
        assert!(c.index("orders_pk").is_none());
        // The dropped definition is retained as a tombstone until re-added.
        assert_eq!(c.dropped_index("orders_pk").unwrap().column, "o_orderkey");
        assert_eq!(c.dropped_index_names(), vec!["orders_pk"]);
        let restored = c.dropped_index("orders_pk").unwrap().clone();
        c.add_index(restored).unwrap();
        assert!(c.has_index_on("orders"));
        assert!(c.dropped_index("orders_pk").is_none());
    }

    #[test]
    fn storage_kind_display() {
        assert_eq!(StorageKind::SystemManaged.to_string(), "SMS");
        assert_eq!(StorageKind::DatabaseManaged.to_string(), "DMS");
    }
}
