//! Buffer-cache model.
//!
//! The executor does not simulate individual pages; it needs a per-table *hit ratio*
//! that behaves sensibly: small, frequently-touched tables stay resident, huge tables
//! mostly miss, and shrinking `shared_buffers` (or growing a table via bulk DML) lowers
//! the ratio. DIADS sees the result through the `bufferHits` / `bufferHitRatio`
//! database metrics, which a database-only diagnosis tool would be tempted to blame
//! ("suboptimal buffer pool setting", §5).

use crate::catalog::Catalog;
use crate::config::DbConfig;

/// A simple working-set buffer-cache model.
#[derive(Debug, Clone)]
pub struct BufferCache {
    capacity_pages: f64,
}

impl BufferCache {
    /// Creates a cache sized from the configuration's `shared_buffers`.
    pub fn new(config: &DbConfig) -> Self {
        BufferCache { capacity_pages: (config.shared_buffers_mb as f64) * 1024.0 * 1024.0 / 8192.0 }
    }

    /// Cache capacity in 8 KB pages.
    pub fn capacity_pages(&self) -> f64 {
        self.capacity_pages
    }

    /// Hit ratio for scans of `table`, given the total working set of the query's
    /// tables (all competing for the same buffers).
    ///
    /// The model gives each table a share of the cache proportional to the inverse of
    /// its size (small hot tables win), then the hit ratio is `min(1, share / pages)`,
    /// floored at a small constant because even cold scans reuse some pages.
    pub fn hit_ratio(&self, catalog: &Catalog, table: &str, competing_tables: &[String]) -> f64 {
        let Some(t) = catalog.table(table) else { return 0.0 };
        let pages = t.pages() as f64;
        // Weight = 1/size, normalised across the competing set (including this table).
        let mut weights = 0.0;
        for name in competing_tables {
            if let Some(other) = catalog.table(name) {
                weights += 1.0 / (other.pages() as f64);
            }
        }
        if !competing_tables.iter().any(|n| n == table) {
            weights += 1.0 / pages;
        }
        if weights <= 0.0 {
            return 0.0;
        }
        let share = self.capacity_pages * (1.0 / pages) / weights;
        (share / pages).clamp(0.05, 0.99)
    }

    /// Physical pages read for a scan that touches `pages_touched` pages of `table`.
    pub fn physical_reads(
        &self,
        catalog: &Catalog,
        table: &str,
        competing_tables: &[String],
        pages_touched: f64,
    ) -> f64 {
        let hit = self.hit_ratio(catalog, table, competing_tables);
        (pages_touched * (1.0 - hit)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{StorageKind, Table, Tablespace};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_tablespace(Tablespace {
            name: "ts".into(),
            volume: "V1".into(),
            storage: StorageKind::SystemManaged,
        })
        .unwrap();
        for (name, rows, width) in
            [("nation", 25_u64, 120_u32), ("lineitem", 60_000_000, 140), ("part", 2_000_000, 156)]
        {
            c.add_table(Table {
                name: name.into(),
                tablespace: "ts".into(),
                row_count: rows,
                avg_row_bytes: width,
                predicate_selectivity: 0.1,
                clustering: 0.9,
            })
            .unwrap();
        }
        c
    }

    #[test]
    fn small_tables_stay_cached() {
        let cat = catalog();
        let cache = BufferCache::new(&DbConfig::default());
        let tables = vec!["nation".to_string(), "lineitem".to_string(), "part".to_string()];
        let nation = cache.hit_ratio(&cat, "nation", &tables);
        let lineitem = cache.hit_ratio(&cat, "lineitem", &tables);
        assert!(nation > 0.9, "nation hit ratio {nation}");
        assert!(lineitem < 0.3, "lineitem hit ratio {lineitem}");
        assert!(nation > lineitem);
    }

    #[test]
    fn smaller_shared_buffers_lower_hit_ratios() {
        let cat = catalog();
        let tables = vec!["part".to_string()];
        let big = BufferCache::new(&DbConfig { shared_buffers_mb: 8192, ..DbConfig::default() });
        let small = BufferCache::new(&DbConfig { shared_buffers_mb: 64, ..DbConfig::default() });
        assert!(big.hit_ratio(&cat, "part", &tables) > small.hit_ratio(&cat, "part", &tables));
        assert!(big.capacity_pages() > small.capacity_pages());
    }

    #[test]
    fn growing_a_table_lowers_its_hit_ratio() {
        let mut cat = catalog();
        let cache = BufferCache::new(&DbConfig::default());
        let tables = vec!["part".to_string()];
        let before = cache.hit_ratio(&cat, "part", &tables);
        cat.apply_bulk_dml("part", 20.0, 0.1).unwrap();
        let after = cache.hit_ratio(&cat, "part", &tables);
        assert!(after < before);
    }

    #[test]
    fn physical_reads_respect_hit_ratio() {
        let cat = catalog();
        let cache = BufferCache::new(&DbConfig::default());
        let tables = vec!["nation".to_string()];
        let reads = cache.physical_reads(&cat, "nation", &tables, 100.0);
        assert!(reads < 15.0, "mostly cached: {reads}");
        assert_eq!(cache.physical_reads(&cat, "missing", &tables, 100.0), 100.0);
    }

    #[test]
    fn unknown_table_has_zero_hit_ratio() {
        let cat = catalog();
        let cache = BufferCache::new(&DbConfig::default());
        assert_eq!(cache.hit_ratio(&cat, "missing", &[]), 0.0);
    }

    #[test]
    fn table_not_in_competing_set_is_still_accounted() {
        let cat = catalog();
        let cache = BufferCache::new(&DbConfig::default());
        let ratio = cache.hit_ratio(&cat, "nation", &["part".to_string()]);
        assert!(ratio > 0.5);
    }
}
