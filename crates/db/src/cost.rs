//! A PostgreSQL-style plan cost model.
//!
//! The optimizer prices each candidate plan with the statistics snapshot taken at
//! planning time and the current configuration parameters. Reference [18] of the paper
//! (Reiss & Kanungo) showed how sensitive plan choice is to the storage cost constants
//! (`seq_page_cost`, `random_page_cost`); module PD's plan-change analysis and the
//! what-if extension both lean on this model, and module IA's second implementation
//! ("leverages the plan cost models used by database query optimizers") uses it to
//! apportion slowdown.

use crate::catalog::Catalog;
use crate::config::DbConfig;
use crate::plan::{OperatorKind, Plan, PlanNode, StatsProvider};

/// An abstract plan cost, in planner cost units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cost {
    /// Cost charged to I/O (page fetches).
    pub io: f64,
    /// Cost charged to CPU (tuple and operator processing).
    pub cpu: f64,
}

impl Cost {
    /// Zero cost.
    pub const ZERO: Cost = Cost { io: 0.0, cpu: 0.0 };

    /// Total cost.
    pub fn total(&self) -> f64 {
        self.io + self.cpu
    }

    /// Sum of two costs.
    pub fn plus(&self, other: Cost) -> Cost {
        Cost { io: self.io + other.io, cpu: self.cpu + other.cpu }
    }
}

/// The cost model: prices operators and whole plans.
#[derive(Debug, Clone)]
pub struct CostModel {
    config: DbConfig,
}

impl CostModel {
    /// Creates a cost model using the given configuration parameters.
    pub fn new(config: DbConfig) -> Self {
        CostModel { config }
    }

    /// The configuration the model prices with.
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// Cost of a single operator (excluding its children), using `stats` for
    /// cardinalities and `catalog` for physical properties (page counts, clustering).
    pub fn operator_cost(&self, node: &PlanNode, catalog: &Catalog, stats: &dyn StatsProvider) -> Cost {
        let cfg = &self.config;
        let out_rows = node.output_rows(stats);
        let in_rows = node.input_rows(stats);
        match node.kind {
            OperatorKind::SeqScan => {
                let table = node.table.as_deref().unwrap_or("");
                let pages = catalog.table(table).map(|t| t.pages()).unwrap_or(1) as f64;
                Cost { io: pages * cfg.seq_page_cost, cpu: in_rows * cfg.cpu_tuple_cost }
            }
            OperatorKind::IndexScan => {
                let table = node.table.as_deref().unwrap_or("");
                let (pages, clustering) =
                    catalog.table(table).map(|t| (t.pages() as f64, t.clustering)).unwrap_or((1.0, 0.5));
                // Heap pages fetched: selective scans touch ~one page per row when the
                // table is unclustered, fewer when clustered; never more than the table.
                let rows_fetched = out_rows.max(1.0);
                let heap_pages = (rows_fetched * (1.0 - clustering) + rows_fetched / 50.0 * clustering)
                    .min(pages)
                    .max(1.0);
                let index_pages = (rows_fetched / 200.0).max(1.0);
                Cost {
                    io: (heap_pages + index_pages) * cfg.random_page_cost,
                    cpu: rows_fetched * (cfg.cpu_index_tuple_cost + cfg.cpu_tuple_cost),
                }
            }
            OperatorKind::Hash => {
                Cost { io: self.spill_io(in_rows), cpu: in_rows * cfg.cpu_operator_cost * 2.0 }
            }
            OperatorKind::HashJoin => {
                Cost { io: 0.0, cpu: in_rows * cfg.cpu_operator_cost + out_rows * cfg.cpu_tuple_cost }
            }
            OperatorKind::NestedLoop => {
                // The inner side is re-evaluated per outer row; charge quadratic CPU.
                let outer = node.children.first().map(|c| c.output_rows(stats)).unwrap_or(0.0);
                let inner = node.children.get(1).map(|c| c.output_rows(stats)).unwrap_or(0.0);
                Cost {
                    io: 0.0,
                    cpu: (outer * inner).max(in_rows) * cfg.cpu_operator_cost * 0.1
                        + out_rows * cfg.cpu_tuple_cost,
                }
            }
            OperatorKind::MergeJoin => {
                Cost { io: 0.0, cpu: in_rows * cfg.cpu_operator_cost * 1.5 + out_rows * cfg.cpu_tuple_cost }
            }
            OperatorKind::Sort => {
                let n = in_rows.max(2.0);
                Cost { io: self.spill_io(in_rows), cpu: n * n.log2() * cfg.cpu_operator_cost }
            }
            OperatorKind::Aggregate => Cost { io: 0.0, cpu: in_rows * cfg.cpu_operator_cost * 2.0 },
            OperatorKind::Materialize => {
                Cost { io: self.spill_io(in_rows), cpu: in_rows * cfg.cpu_tuple_cost * 0.5 }
            }
            OperatorKind::Limit => Cost { io: 0.0, cpu: out_rows * cfg.cpu_tuple_cost * 0.1 },
            OperatorKind::SubPlanFilter => {
                // The subquery child is charged per distinct outer group; keep linear.
                Cost { io: 0.0, cpu: in_rows * cfg.cpu_operator_cost + out_rows * cfg.cpu_tuple_cost }
            }
        }
    }

    /// Extra I/O cost when an in-memory operator spills past `work_mem`.
    fn spill_io(&self, rows: f64) -> f64 {
        let bytes = rows * 64.0; // rough width of a spilled tuple
        let work_mem_bytes = self.config.work_mem_kb as f64 * 1024.0;
        if bytes <= work_mem_bytes {
            0.0
        } else {
            // Write + read back the overflow, in pages, at sequential cost.
            2.0 * ((bytes - work_mem_bytes) / 8192.0) * self.config.seq_page_cost
        }
    }

    /// Total cost of a whole plan.
    pub fn plan_cost(&self, plan: &Plan, catalog: &Catalog, stats: &dyn StatsProvider) -> Cost {
        plan.operators()
            .iter()
            .fold(Cost::ZERO, |acc, node| acc.plus(self.operator_cost(node, catalog, stats)))
    }

    /// Per-operator cost breakdown of a plan, in operator order.
    pub fn per_operator_costs(
        &self,
        plan: &Plan,
        catalog: &Catalog,
        stats: &dyn StatsProvider,
    ) -> Vec<(crate::plan::OperatorId, Cost)> {
        plan.operators().iter().map(|node| (node.id, self.operator_cost(node, catalog, stats))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{StorageKind, Table, Tablespace};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_tablespace(Tablespace {
            name: "ts".into(),
            volume: "V1".into(),
            storage: StorageKind::SystemManaged,
        })
        .unwrap();
        c.add_table(Table {
            name: "part".into(),
            tablespace: "ts".into(),
            row_count: 2_000_000,
            avg_row_bytes: 156,
            predicate_selectivity: 0.001,
            clustering: 0.9,
        })
        .unwrap();
        c.add_table(Table {
            name: "nation".into(),
            tablespace: "ts".into(),
            row_count: 25,
            avg_row_bytes: 120,
            predicate_selectivity: 0.2,
            clustering: 1.0,
        })
        .unwrap();
        c
    }

    #[test]
    fn selective_index_scan_beats_seq_scan() {
        let cat = catalog();
        let model = CostModel::new(DbConfig::default());
        let seq = PlanNode::seq_scan("part", 0.001);
        let idx = PlanNode::index_scan("part", "part_pkey", 0.001);
        let seq_cost = model.operator_cost(&seq, &cat, &cat).total();
        let idx_cost = model.operator_cost(&idx, &cat, &cat).total();
        assert!(idx_cost < seq_cost, "idx {idx_cost} vs seq {seq_cost}");
    }

    #[test]
    fn unselective_index_scan_loses_to_seq_scan() {
        let cat = catalog();
        let model = CostModel::new(DbConfig::default());
        let seq = PlanNode::seq_scan("part", 0.9);
        let idx = PlanNode::index_scan("part", "part_pkey", 0.9);
        assert!(
            model.operator_cost(&idx, &cat, &cat).total() > model.operator_cost(&seq, &cat, &cat).total()
        );
    }

    #[test]
    fn random_page_cost_flips_the_access_path_decision() {
        // The Reiss/Kanungo sensitivity: a mis-set random_page_cost makes the index
        // path look worse than the sequential path at a selectivity where it used to win.
        let cat = catalog();
        let seq = PlanNode::seq_scan("part", 0.02);
        let idx = PlanNode::index_scan("part", "part_pkey", 0.02);
        let cheap_random = CostModel::new(DbConfig::default().with_random_page_cost(1.0));
        let pricey_random = CostModel::new(DbConfig::default().with_random_page_cost(40.0));
        assert!(
            cheap_random.operator_cost(&idx, &cat, &cat).total()
                < cheap_random.operator_cost(&seq, &cat, &cat).total()
        );
        assert!(
            pricey_random.operator_cost(&idx, &cat, &cat).total()
                > pricey_random.operator_cost(&seq, &cat, &cat).total()
        );
    }

    #[test]
    fn small_work_mem_makes_sorts_spill() {
        let cat = catalog();
        let sort = PlanNode::sort(PlanNode::seq_scan("part", 1.0));
        let sort_node = &sort;
        let roomy = CostModel::new(DbConfig::default().with_work_mem_kb(1_048_576));
        let tiny = CostModel::new(DbConfig::default().with_work_mem_kb(64));
        let roomy_cost = roomy.operator_cost(sort_node, &cat, &cat);
        let tiny_cost = tiny.operator_cost(sort_node, &cat, &cat);
        assert_eq!(roomy_cost.io, 0.0);
        assert!(tiny_cost.io > 0.0);
        assert!(tiny_cost.total() > roomy_cost.total());
    }

    #[test]
    fn plan_cost_sums_operators_and_tracks_data_growth() {
        let mut cat = catalog();
        let model = CostModel::new(DbConfig::default());
        let plan = Plan::new(
            "p",
            "q",
            PlanNode::hash_join(
                0.5,
                PlanNode::seq_scan("part", 0.1),
                PlanNode::hash(PlanNode::seq_scan("nation", 1.0)),
            ),
        );
        let per_op = model.per_operator_costs(&plan, &cat, &cat);
        assert_eq!(per_op.len(), plan.operator_count());
        let total: f64 = per_op.iter().map(|(_, c)| c.total()).sum();
        assert!((total - model.plan_cost(&plan, &cat, &cat).total()).abs() < 1e-6);

        let before = model.plan_cost(&plan, &cat, &cat).total();
        cat.apply_bulk_dml("part", 4.0, 0.1).unwrap();
        let after = model.plan_cost(&plan, &cat, &cat).total();
        assert!(after > before * 2.0);
    }

    #[test]
    fn cost_arithmetic() {
        let a = Cost { io: 1.0, cpu: 2.0 };
        let b = Cost { io: 0.5, cpu: 0.25 };
        let c = a.plus(b);
        assert_eq!(c.total(), 3.75);
        assert_eq!(Cost::ZERO.total(), 0.0);
    }
}
