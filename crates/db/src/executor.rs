//! The simulated executor.
//!
//! Executing a plan produces exactly the monitoring data the paper's instrumented
//! PostgreSQL reported to the management tool: per-operator start/stop times and record
//! counts (estimated and actual), instance-level metrics (buffer hits, scans, locks),
//! and — because the executor's I/O rides on the SAN simulator's response times — a
//! faithful causal chain from SAN contention to operator slowdown.
//!
//! Timing semantics: an operator's **elapsed** time covers its whole subtree (children
//! run first, then the operator's own work), so when a leaf slows down every ancestor's
//! elapsed time grows with it — this is the "event propagation" that makes upstream
//! operators join the correlated-operator set in the paper's scenario 1. The
//! **self** time is the operator's own I/O + CPU + lock wait, which is what impact
//! analysis uses to attribute the slowdown to root causes.

use diads_monitor::{
    ComponentId, ComponentKind, Duration, MetricKey, MetricName, MetricSink, TimeRange, Timestamp,
};
use diads_san::workload::IoProfile;
use diads_san::{SanSimulator, VolumeLoad};

use crate::buffer::BufferCache;
use crate::catalog::{Catalog, StatsSnapshot};
use crate::config::DbConfig;
use crate::locks::LockManager;
use crate::plan::{OperatorId, OperatorKind, Plan, PlanNode};
use crate::{DbError, Result};

/// Per-operator observations from one plan execution.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorRunStats {
    /// Operator number.
    pub operator: OperatorId,
    /// Operator kind.
    pub kind: OperatorKind,
    /// Scanned table (leaf operators only).
    pub table: Option<String>,
    /// SAN volume the scanned table lives on (leaf operators only).
    pub volume: Option<String>,
    /// Absolute start time of the operator's subtree.
    pub start: Timestamp,
    /// Absolute stop time of the operator.
    pub stop: Timestamp,
    /// Elapsed (inclusive) running time in seconds.
    pub elapsed_secs: f64,
    /// Exclusive (self) running time in seconds.
    pub self_secs: f64,
    /// Portion of the self time spent on I/O.
    pub io_secs: f64,
    /// Portion of the self time spent on CPU.
    pub cpu_secs: f64,
    /// Portion of the self time spent waiting for locks.
    pub lock_wait_secs: f64,
    /// Actual output record count.
    pub actual_rows: f64,
    /// Optimizer-estimated output record count (from the planning-time snapshot).
    pub estimated_rows: f64,
    /// Physical page reads issued by the operator.
    pub physical_reads: f64,
    /// Pages served from the buffer cache.
    pub buffer_hits: f64,
}

/// Everything observed about one execution of a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRunRecord {
    /// The query's name (e.g. `TPC-H Q2 report`).
    pub query: String,
    /// The executed plan's name.
    pub plan_name: String,
    /// The executed plan's structural fingerprint.
    pub plan_fingerprint: String,
    /// When execution started.
    pub start: Timestamp,
    /// When execution finished.
    pub end: Timestamp,
    /// Total elapsed seconds.
    pub elapsed_secs: f64,
    /// Per-operator observations, in operator-number order.
    pub operators: Vec<OperatorRunStats>,
    /// The I/O this run pushed onto each SAN volume (used to drive SAN metric recording).
    pub volume_loads: Vec<VolumeLoad>,
    /// Instance-level database metrics for this run.
    pub db_metrics: Vec<(MetricName, f64)>,
}

impl QueryRunRecord {
    /// The observation for one operator.
    pub fn operator(&self, id: OperatorId) -> Option<&OperatorRunStats> {
        self.operators.iter().find(|o| o.operator == id)
    }

    /// The run's time window.
    pub fn window(&self) -> TimeRange {
        TimeRange::new(self.start, self.end.plus(Duration::from_secs(1)))
    }

    /// Records the run's observations (operator metrics, instance metrics and a
    /// simple CPU-usage figure for the database server) into the metric sink —
    /// either the store directly, or a `&ShardedWriter` when the scenario engine
    /// records database and SAN metrics concurrently.
    pub fn record_metrics<S: MetricSink>(&self, store: &mut S, db_instance: &str, db_server: &str) {
        let at = self.end;
        for op in &self.operators {
            // One interning per operator; the four per-metric records are symbol-keyed.
            let comp = store.intern_component(&ComponentId::operator(op.operator.name()));
            let mut emit = |metric: &MetricName, value: f64| {
                let key = MetricKey::new(comp, store.intern_metric(metric));
                store.record_key(key, at, value);
            };
            emit(&MetricName::OperatorElapsedTime, op.elapsed_secs);
            emit(&MetricName::OperatorSelfTime, op.self_secs);
            emit(&MetricName::OperatorRecordCount, op.actual_rows);
            emit(&MetricName::OperatorEstimatedRecords, op.estimated_rows);
        }
        let instance =
            store.intern_component(&ComponentId::new(ComponentKind::DatabaseInstance, db_instance));
        let emit_instance = |store: &mut S, metric: &MetricName, value: f64| {
            let key = MetricKey::new(instance, store.intern_metric(metric));
            store.record_key(key, at, value);
        };
        for (metric, value) in &self.db_metrics {
            emit_instance(store, metric, *value);
        }
        emit_instance(store, &MetricName::PlanElapsedTime, self.elapsed_secs);
        // Server CPU while the query ran: the CPU share of the elapsed time.
        let cpu_secs: f64 = self.operators.iter().map(|o| o.cpu_secs).sum();
        let cpu_pct = (cpu_secs / self.elapsed_secs.max(1e-9) * 100.0).min(100.0);
        let server = store.intern_component(&ComponentId::server(db_server));
        let emit_server = |store: &mut S, metric: &MetricName, value: f64| {
            let key = MetricKey::new(server, store.intern_metric(metric));
            store.record_key(key, at, value);
        };
        emit_server(store, &MetricName::CpuUsagePercent, cpu_pct);
        emit_server(store, &MetricName::PhysicalMemoryPercent, 55.0);
    }
}

/// The context a plan executes in.
#[derive(Debug)]
pub struct ExecutionEnvironment<'a> {
    /// The live catalog (actual data properties).
    pub catalog: &'a Catalog,
    /// The statistics snapshot the plan was chosen with (estimated data properties).
    pub planned_stats: &'a StatsSnapshot,
    /// Configuration parameters.
    pub config: &'a DbConfig,
    /// Buffer-cache model.
    pub buffer: &'a BufferCache,
    /// Lock-contention model.
    pub locks: &'a LockManager,
    /// The SAN the database's volumes live on.
    pub san: &'a SanSimulator,
    /// The server the database instance runs on (for zoning checks / attribution).
    pub db_server: &'a str,
}

/// The simulated executor.
#[derive(Debug, Default)]
pub struct Executor;

struct NodeOutcome {
    elapsed: f64,
    stats: Vec<OperatorRunStats>,
}

impl Executor {
    /// Creates an executor.
    pub fn new() -> Self {
        Executor
    }

    /// Executes `plan` starting at `start` and returns the run record.
    ///
    /// # Errors
    /// Fails if a leaf operator references a table with no tablespace→volume mapping.
    pub fn execute(
        &self,
        plan: &Plan,
        env: &ExecutionEnvironment<'_>,
        start: Timestamp,
    ) -> Result<QueryRunRecord> {
        let competing: Vec<String> = plan.tables();

        // Pass 1: nominal execution at base latency to size the query's own I/O load.
        let nominal = self.run_tree(plan, env, start, &competing, &[])?;
        let nominal_secs: f64 = nominal.elapsed.max(1.0);
        let own_load = self.own_volume_loads(plan, env, &competing, start, nominal_secs);

        // Pass 2: final execution with the query's own load contributing to contention.
        let outcome = self.run_tree(plan, env, start, &competing, &own_load)?;
        let elapsed = outcome.elapsed.max(1.0);
        let own_load = self.own_volume_loads(plan, env, &competing, start, elapsed);

        let mut operators = outcome.stats;
        operators.sort_by_key(|o| o.operator);

        let db_metrics = self.instance_metrics(&operators, env, start);
        let end = start.plus(Duration::from_secs(elapsed.round() as u64));
        Ok(QueryRunRecord {
            query: plan.query.clone(),
            plan_name: plan.name.clone(),
            plan_fingerprint: plan.fingerprint(),
            start,
            end,
            elapsed_secs: elapsed,
            operators,
            volume_loads: own_load,
            db_metrics,
        })
    }

    /// Simulates the plan tree and returns per-operator stats plus total elapsed time.
    fn run_tree(
        &self,
        plan: &Plan,
        env: &ExecutionEnvironment<'_>,
        start: Timestamp,
        competing: &[String],
        own_load: &[VolumeLoad],
    ) -> Result<NodeOutcome> {
        let mut stats = Vec::new();
        let elapsed = self.run_node(&plan.root, env, start, competing, own_load, &mut stats)?;
        Ok(NodeOutcome { elapsed, stats })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_node(
        &self,
        node: &PlanNode,
        env: &ExecutionEnvironment<'_>,
        start: Timestamp,
        competing: &[String],
        own_load: &[VolumeLoad],
        out: &mut Vec<OperatorRunStats>,
    ) -> Result<f64> {
        // Children execute first (sequentially), then the node's own work.
        let mut cursor = start;
        let mut children_elapsed = 0.0;
        for child in &node.children {
            let e = self.run_node(child, env, cursor, competing, own_load, out)?;
            children_elapsed += e;
            cursor = cursor.plus(Duration::from_secs(e.round() as u64));
        }

        let actual_rows = node.output_rows(env.catalog);
        let estimated_rows = node.output_rows(env.planned_stats);
        let input_rows = node.input_rows(env.catalog);

        let (io_secs, physical_reads, buffer_hits, volume) = if node.kind.is_leaf() {
            let table = node.table.as_deref().unwrap_or_default();
            let volume = env
                .catalog
                .volume_of_table(table)
                .ok_or_else(|| DbError::InvalidPlan(format!("table {table} has no volume mapping")))?;
            let pages_touched = self.pages_touched(node, env);
            let physical = env.buffer.physical_reads(env.catalog, table, competing, pages_touched);
            let hits = (pages_touched - physical).max(0.0);
            let response = env.san.volume_response(&volume, start, own_load);
            let per_page_ms = match node.kind {
                // Sequential scans benefit from prefetch and larger transfers.
                OperatorKind::SeqScan => response.read_ms * 0.35,
                _ => response.read_ms,
            };
            (physical * per_page_ms / 1000.0, physical, hits, Some(volume))
        } else {
            (0.0, 0.0, 0.0, None)
        };

        let cpu_secs = self.cpu_secs(node, env, input_rows);
        let lock_wait_secs = match &node.table {
            Some(table) if node.kind.is_leaf() => env.locks.wait_secs(table, start),
            _ => 0.0,
        };

        let self_secs = io_secs + cpu_secs + lock_wait_secs;
        let elapsed = children_elapsed + self_secs;
        let stop = start.plus(Duration::from_secs(elapsed.round() as u64));

        out.push(OperatorRunStats {
            operator: node.id,
            kind: node.kind,
            table: node.table.clone(),
            volume,
            start,
            stop,
            elapsed_secs: elapsed,
            self_secs,
            io_secs,
            cpu_secs,
            lock_wait_secs,
            actual_rows,
            estimated_rows,
            physical_reads,
            buffer_hits,
        });
        Ok(elapsed)
    }

    /// Heap pages a leaf operator touches.
    fn pages_touched(&self, node: &PlanNode, env: &ExecutionEnvironment<'_>) -> f64 {
        let table = node.table.as_deref().unwrap_or_default();
        let Some(t) = env.catalog.table(table) else { return 0.0 };
        let pages = t.pages() as f64;
        match node.kind {
            OperatorKind::SeqScan => pages,
            OperatorKind::IndexScan => {
                let rows = node.output_rows(env.catalog).max(1.0);
                (rows * (1.0 - t.clustering) + rows / 50.0 * t.clustering).clamp(1.0, pages)
            }
            _ => 0.0,
        }
    }

    /// CPU seconds an operator spends processing its input.
    fn cpu_secs(&self, node: &PlanNode, env: &ExecutionEnvironment<'_>, input_rows: f64) -> f64 {
        let rate = env.config.executor_tuples_per_sec.max(1.0);
        let factor = match node.kind {
            OperatorKind::SeqScan | OperatorKind::IndexScan => 1.0,
            OperatorKind::Hash => 1.5,
            OperatorKind::HashJoin => 1.2,
            OperatorKind::NestedLoop => 2.0,
            OperatorKind::MergeJoin => 1.5,
            OperatorKind::Sort => (input_rows.max(2.0).log2() / 4.0).max(1.0),
            OperatorKind::Aggregate => 1.5,
            OperatorKind::Materialize => 0.5,
            OperatorKind::Limit => 0.05,
            OperatorKind::SubPlanFilter => 1.0,
        };
        input_rows * factor / rate
    }

    /// The I/O the query itself pushes onto each volume during the run.
    fn own_volume_loads(
        &self,
        plan: &Plan,
        env: &ExecutionEnvironment<'_>,
        competing: &[String],
        start: Timestamp,
        run_secs: f64,
    ) -> Vec<VolumeLoad> {
        use std::collections::BTreeMap;
        let mut per_volume: BTreeMap<String, (f64, f64)> = BTreeMap::new(); // (random pages, seq pages)
        for leaf in plan.leaves() {
            let table = leaf.table.as_deref().unwrap_or_default();
            let Some(volume) = env.catalog.volume_of_table(table) else { continue };
            let pages = self.pages_touched(leaf, env);
            let physical = env.buffer.physical_reads(env.catalog, table, competing, pages);
            let entry = per_volume.entry(volume).or_insert((0.0, 0.0));
            match leaf.kind {
                OperatorKind::SeqScan => entry.1 += physical,
                _ => entry.0 += physical,
            }
        }
        let window = TimeRange::with_duration(start, Duration::from_secs(run_secs.round().max(1.0) as u64));
        per_volume
            .into_iter()
            .map(|(volume, (random_pages, seq_pages))| {
                let total_pages = random_pages + seq_pages;
                let read_iops = total_pages / run_secs.max(1.0);
                // Report runs also dirty a small fraction of pages (hint bits, temp
                // bookkeeping), which is why the volumes see some write traffic.
                let write_iops = read_iops * 0.05;
                let seq_fraction = if total_pages > 0.0 { seq_pages / total_pages } else { 0.0 };
                VolumeLoad::new(
                    volume,
                    IoProfile {
                        read_iops,
                        write_iops,
                        read_kb: 8.0,
                        write_kb: 8.0,
                        sequential_fraction: seq_fraction,
                    },
                    window,
                )
            })
            .collect()
    }

    /// Instance-level database metrics for the run.
    fn instance_metrics(
        &self,
        operators: &[OperatorRunStats],
        env: &ExecutionEnvironment<'_>,
        start: Timestamp,
    ) -> Vec<(MetricName, f64)> {
        let physical: f64 = operators.iter().map(|o| o.physical_reads).sum();
        let hits: f64 = operators.iter().map(|o| o.buffer_hits).sum();
        let touched = physical + hits;
        let seq_scans = operators.iter().filter(|o| o.kind == OperatorKind::SeqScan).count() as f64;
        let index_scans = operators.iter().filter(|o| o.kind == OperatorKind::IndexScan).count() as f64;
        let random_ios: f64 =
            operators.iter().filter(|o| o.kind == OperatorKind::IndexScan).map(|o| o.physical_reads).sum();
        let lock_wait: f64 = operators.iter().map(|o| o.lock_wait_secs).sum();
        vec![
            (MetricName::BlocksRead, physical),
            (MetricName::BufferHits, hits),
            (MetricName::BufferHitRatio, if touched > 0.0 { hits / touched } else { 1.0 }),
            (MetricName::SequentialScans, seq_scans),
            (MetricName::IndexScans, index_scans),
            (MetricName::IndexReads, random_ios),
            (MetricName::IndexFetches, random_ios * 1.2),
            (MetricName::RandomIos, random_ios),
            (MetricName::LockWaitTime, lock_wait),
            (MetricName::LocksHeld, env.locks.locks_held(start) as f64),
            (MetricName::SpaceUsage, 0.0),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Index, StorageKind, Table, Tablespace};
    use crate::locks::LockContentionWindow;
    use diads_monitor::MetricStore;
    use diads_san::topology::paper_testbed;
    use diads_san::workload::{ExternalWorkload, IoProfile};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_tablespace(Tablespace {
            name: "ts_v1".into(),
            volume: "V1".into(),
            storage: StorageKind::SystemManaged,
        })
        .unwrap();
        c.add_tablespace(Tablespace {
            name: "ts_v2".into(),
            volume: "V2".into(),
            storage: StorageKind::SystemManaged,
        })
        .unwrap();
        c.add_table(Table {
            name: "partsupp".into(),
            tablespace: "ts_v1".into(),
            row_count: 8_000_000,
            avg_row_bytes: 144,
            predicate_selectivity: 0.05,
            clustering: 0.6,
        })
        .unwrap();
        c.add_table(Table {
            name: "part".into(),
            tablespace: "ts_v2".into(),
            row_count: 2_000_000,
            avg_row_bytes: 156,
            predicate_selectivity: 0.01,
            clustering: 0.9,
        })
        .unwrap();
        c.add_index(Index {
            name: "part_pkey".into(),
            table: "part".into(),
            column: "p_partkey".into(),
            unique: true,
        })
        .unwrap();
        c
    }

    fn plan() -> Plan {
        Plan::new(
            "join",
            "partsupp x part",
            PlanNode::sort(PlanNode::hash_join(
                0.3,
                PlanNode::seq_scan("partsupp", 0.05),
                PlanNode::hash(PlanNode::index_scan("part", "part_pkey", 0.01)),
            )),
        )
    }

    fn run(san: &SanSimulator, catalog: &Catalog, locks: &LockManager, start: Timestamp) -> QueryRunRecord {
        let config = DbConfig::default();
        let buffer = BufferCache::new(&config);
        let snapshot = catalog.snapshot();
        let env = ExecutionEnvironment {
            catalog,
            planned_stats: &snapshot,
            config: &config,
            buffer: &buffer,
            locks,
            san,
            db_server: "db-server",
        };
        Executor::new().execute(&plan(), &env, start).unwrap()
    }

    #[test]
    fn execution_produces_per_operator_stats() {
        let san = SanSimulator::new(paper_testbed());
        let cat = catalog();
        let record = run(&san, &cat, &LockManager::new(), Timestamp::new(1_000));
        assert_eq!(record.operators.len(), 5);
        assert!(record.elapsed_secs > 0.0);
        assert_eq!(record.start, Timestamp::new(1_000));
        assert!(record.end > record.start);
        // Root elapsed equals the run elapsed.
        let root = record.operator(OperatorId(1)).unwrap();
        assert!((root.elapsed_secs - record.elapsed_secs).abs() < 1e-9);
        // Leaves carry their volume.
        let partsupp_scan = record.operators.iter().find(|o| o.table.as_deref() == Some("partsupp")).unwrap();
        assert_eq!(partsupp_scan.volume.as_deref(), Some("V1"));
        assert!(partsupp_scan.io_secs > 0.0);
        assert!(partsupp_scan.physical_reads > 0.0);
        // Elapsed of a parent includes its children.
        let join = record.operator(OperatorId(2)).unwrap();
        assert!(join.elapsed_secs >= partsupp_scan.elapsed_secs);
        assert!(join.self_secs <= join.elapsed_secs);
        // The run pushes I/O onto both volumes.
        assert_eq!(record.volume_loads.len(), 2);
        assert!(record.volume_loads.iter().all(|l| l.profile.read_iops > 0.0));
    }

    #[test]
    fn contention_on_v1_slows_only_v1_leaves() {
        let cat = catalog();
        let quiet = SanSimulator::new(paper_testbed());
        let baseline = run(&quiet, &cat, &LockManager::new(), Timestamp::new(10_000));

        let mut contended = SanSimulator::new(paper_testbed());
        contended.topology_mut().create_volume(Timestamp::new(0), "Vprime", "P1", 50).unwrap();
        contended
            .add_workload(ExternalWorkload::steady(
                "etl",
                "app-server",
                "Vprime",
                IoProfile::oltp(260.0, 130.0),
                TimeRange::new(Timestamp::new(0), Timestamp::new(1_000_000)),
            ))
            .unwrap();
        let slow = run(&contended, &cat, &LockManager::new(), Timestamp::new(10_000));

        assert!(
            slow.elapsed_secs > baseline.elapsed_secs * 1.5,
            "{} vs {}",
            slow.elapsed_secs,
            baseline.elapsed_secs
        );
        let b_v1 = baseline.operators.iter().find(|o| o.volume.as_deref() == Some("V1")).unwrap();
        let s_v1 = slow.operators.iter().find(|o| o.volume.as_deref() == Some("V1")).unwrap();
        assert!(s_v1.self_secs > b_v1.self_secs * 1.5);
        let b_v2 = baseline.operators.iter().find(|o| o.volume.as_deref() == Some("V2")).unwrap();
        let s_v2 = slow.operators.iter().find(|o| o.volume.as_deref() == Some("V2")).unwrap();
        assert!(s_v2.self_secs < b_v2.self_secs * 1.3, "{} vs {}", s_v2.self_secs, b_v2.self_secs);
        // Record counts do not change: the data did not change.
        assert!((s_v1.actual_rows - b_v1.actual_rows).abs() < 1e-6);
    }

    #[test]
    fn data_property_change_changes_record_counts_and_estimates_diverge() {
        let san = SanSimulator::new(paper_testbed());
        let mut cat = catalog();
        let before = run(&san, &cat, &LockManager::new(), Timestamp::new(1_000));
        cat.apply_bulk_dml("partsupp", 2.5, 0.2).unwrap();
        let after = run(&san, &cat, &LockManager::new(), Timestamp::new(50_000));
        let b = before.operators.iter().find(|o| o.table.as_deref() == Some("partsupp")).unwrap();
        let a = after.operators.iter().find(|o| o.table.as_deref() == Some("partsupp")).unwrap();
        assert!(a.actual_rows > b.actual_rows * 2.0);
        // The estimate in `after` is taken from the *fresh* snapshot in this test
        // setup, so compare actual growth instead: runtime grows with the data.
        assert!(after.elapsed_secs > before.elapsed_secs);
    }

    #[test]
    fn lock_contention_adds_wait_without_io() {
        let san = SanSimulator::new(paper_testbed());
        let cat = catalog();
        let mut locks = LockManager::new();
        locks.add_contention(LockContentionWindow {
            table: "partsupp".into(),
            window: TimeRange::new(Timestamp::new(0), Timestamp::new(1_000_000)),
            wait_secs_per_scan: 120.0,
        });
        let baseline = run(&san, &cat, &LockManager::new(), Timestamp::new(1_000));
        let locked = run(&san, &cat, &locks, Timestamp::new(1_000));
        assert!(locked.elapsed_secs > baseline.elapsed_secs + 100.0);
        let op = locked.operators.iter().find(|o| o.table.as_deref() == Some("partsupp")).unwrap();
        assert_eq!(op.lock_wait_secs, 120.0);
        let lock_metric = locked.db_metrics.iter().find(|(m, _)| *m == MetricName::LockWaitTime).unwrap();
        assert!(lock_metric.1 >= 120.0);
    }

    #[test]
    fn missing_volume_mapping_is_an_error() {
        let san = SanSimulator::new(paper_testbed());
        let mut cat = Catalog::new();
        cat.add_tablespace(Tablespace {
            name: "ts".into(),
            volume: "V1".into(),
            storage: StorageKind::SystemManaged,
        })
        .unwrap();
        // A catalog whose table points at a tablespace we then cannot resolve: build a
        // plan over a table that simply is not in the catalog.
        let orphan_plan = Plan::new("orphan", "q", PlanNode::seq_scan("ghost", 0.5));
        let config = DbConfig::default();
        let buffer = BufferCache::new(&config);
        let snapshot = cat.snapshot();
        let locks = LockManager::new();
        let env = ExecutionEnvironment {
            catalog: &cat,
            planned_stats: &snapshot,
            config: &config,
            buffer: &buffer,
            locks: &locks,
            san: &san,
            db_server: "db-server",
        };
        assert!(Executor::new().execute(&orphan_plan, &env, Timestamp::new(0)).is_err());
    }

    #[test]
    fn record_metrics_lands_in_the_store() {
        let san = SanSimulator::new(paper_testbed());
        let cat = catalog();
        let record = run(&san, &cat, &LockManager::new(), Timestamp::new(1_000));
        let mut store = MetricStore::new();
        record.record_metrics(&mut store, "reports-db", "db-server");
        let op1 = ComponentId::operator("O1");
        assert!(store.series(&op1, &MetricName::OperatorElapsedTime).is_some());
        assert!(store.series(&op1, &MetricName::OperatorRecordCount).is_some());
        let instance = ComponentId::new(ComponentKind::DatabaseInstance, "reports-db");
        assert!(store.series(&instance, &MetricName::PlanElapsedTime).is_some());
        assert!(store.series(&instance, &MetricName::BufferHitRatio).is_some());
        let server = ComponentId::server("db-server");
        let cpu = store.series(&server, &MetricName::CpuUsagePercent).unwrap().latest().unwrap().value;
        assert!((0.0..=100.0).contains(&cpu));
    }

    #[test]
    fn window_covers_the_run() {
        let san = SanSimulator::new(paper_testbed());
        let cat = catalog();
        let record = run(&san, &cat, &LockManager::new(), Timestamp::new(1_000));
        let w = record.window();
        assert!(w.contains(record.start));
        assert!(w.contains(record.end));
    }
}
