//! Database configuration parameters that influence plan selection and execution.
//!
//! Module PD's plan-change analysis considers "changes in configuration parameters used
//! during plan selection" as one cause of a plan change; the fault injector can flip
//! any of these between the satisfactory and unsatisfactory periods.

/// Planner and executor configuration, modelled after the PostgreSQL parameters the
/// paper's testbed would have exposed.
#[derive(Debug, Clone, PartialEq)]
pub struct DbConfig {
    /// Memory available to each sort/hash node before spilling (KB).
    pub work_mem_kb: u64,
    /// Shared buffer pool size (MB); drives the buffer-cache hit model.
    pub shared_buffers_mb: u64,
    /// Planner's assumption about total cache available to one query (MB).
    pub effective_cache_size_mb: u64,
    /// Planner cost of a sequentially-fetched page.
    pub seq_page_cost: f64,
    /// Planner cost of a randomly-fetched page.
    pub random_page_cost: f64,
    /// Planner cost of processing one tuple.
    pub cpu_tuple_cost: f64,
    /// Planner cost of processing one index entry.
    pub cpu_index_tuple_cost: f64,
    /// Planner cost of evaluating one operator/function.
    pub cpu_operator_cost: f64,
    /// Whether the planner may choose index scans.
    pub enable_indexscan: bool,
    /// Whether the planner may choose hash joins.
    pub enable_hashjoin: bool,
    /// Whether the planner may choose nested-loop joins.
    pub enable_nestloop: bool,
    /// CPU tuple-processing rate of the executor (tuples per second per core) — used to
    /// convert abstract CPU costs into simulated seconds.
    pub executor_tuples_per_sec: f64,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            work_mem_kb: 4 * 1024,
            shared_buffers_mb: 2048,
            effective_cache_size_mb: 8192,
            seq_page_cost: 1.0,
            random_page_cost: 4.0,
            cpu_tuple_cost: 0.01,
            cpu_index_tuple_cost: 0.005,
            cpu_operator_cost: 0.0025,
            enable_indexscan: true,
            enable_hashjoin: true,
            enable_nestloop: true,
            executor_tuples_per_sec: 2_000_000.0,
        }
    }
}

impl DbConfig {
    /// A configuration tuned like the paper's report-generation testbed.
    pub fn paper_default() -> Self {
        DbConfig::default()
    }

    /// Returns a copy with a different `random_page_cost` (a classic mis-tuning that
    /// flips plans between index and sequential scans).
    pub fn with_random_page_cost(mut self, value: f64) -> Self {
        self.random_page_cost = value;
        self
    }

    /// Returns a copy with a different `work_mem_kb`.
    pub fn with_work_mem_kb(mut self, value: u64) -> Self {
        self.work_mem_kb = value;
        self
    }

    /// Returns a copy with index scans enabled or disabled.
    pub fn with_enable_indexscan(mut self, value: bool) -> Self {
        self.enable_indexscan = value;
        self
    }

    /// A flat list of the named parameters and their current values, used by module PD
    /// to diff the configurations in effect for two plans.
    pub fn parameters(&self) -> Vec<(String, String)> {
        vec![
            ("work_mem_kb".into(), self.work_mem_kb.to_string()),
            ("shared_buffers_mb".into(), self.shared_buffers_mb.to_string()),
            ("effective_cache_size_mb".into(), self.effective_cache_size_mb.to_string()),
            ("seq_page_cost".into(), format!("{:.4}", self.seq_page_cost)),
            ("random_page_cost".into(), format!("{:.4}", self.random_page_cost)),
            ("cpu_tuple_cost".into(), format!("{:.4}", self.cpu_tuple_cost)),
            ("cpu_index_tuple_cost".into(), format!("{:.4}", self.cpu_index_tuple_cost)),
            ("cpu_operator_cost".into(), format!("{:.4}", self.cpu_operator_cost)),
            ("enable_indexscan".into(), self.enable_indexscan.to_string()),
            ("enable_hashjoin".into(), self.enable_hashjoin.to_string()),
            ("enable_nestloop".into(), self.enable_nestloop.to_string()),
        ]
    }

    /// The parameters whose values differ between two configurations, as
    /// `(name, old value, new value)` triples.
    pub fn diff(&self, other: &DbConfig) -> Vec<(String, String, String)> {
        self.parameters()
            .into_iter()
            .zip(other.parameters())
            .filter(|(a, b)| a.1 != b.1)
            .map(|(a, b)| (a.0, a.1, b.1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_postgres_like() {
        let c = DbConfig::default();
        assert_eq!(c.seq_page_cost, 1.0);
        assert_eq!(c.random_page_cost, 4.0);
        assert!(c.enable_indexscan && c.enable_hashjoin && c.enable_nestloop);
        assert_eq!(DbConfig::paper_default(), c);
    }

    #[test]
    fn builders_change_one_parameter() {
        let c = DbConfig::default().with_random_page_cost(20.0);
        assert_eq!(c.random_page_cost, 20.0);
        assert_eq!(c.seq_page_cost, 1.0);
        let c = DbConfig::default().with_work_mem_kb(64);
        assert_eq!(c.work_mem_kb, 64);
        let c = DbConfig::default().with_enable_indexscan(false);
        assert!(!c.enable_indexscan);
    }

    #[test]
    fn diff_reports_only_changes() {
        let a = DbConfig::default();
        let b = DbConfig::default().with_random_page_cost(10.0).with_work_mem_kb(128);
        let d = a.diff(&b);
        assert_eq!(d.len(), 2);
        assert!(d.iter().any(|(name, old, new)| name == "random_page_cost"
            && old.starts_with("4")
            && new.starts_with("10")));
        assert!(d.iter().any(|(name, _, new)| name == "work_mem_kb" && new == "128"));
        assert!(a.diff(&a).is_empty());
    }

    #[test]
    fn parameters_list_is_stable() {
        let params = DbConfig::default().parameters();
        assert_eq!(params.len(), 11);
        assert_eq!(params[0].0, "work_mem_kb");
    }
}
