//! Cost-based plan selection among candidate plans.
//!
//! The simulator does not enumerate join orders from SQL; instead each query ships with
//! a small family of *candidate plans* (different access paths and join orders, the way
//! a real optimizer's search space would surface them) and the optimizer picks the
//! cheapest *feasible* one under the current statistics snapshot, index availability
//! and configuration parameters. That is exactly the surface module PD needs: dropping
//! an index, changing data properties or flipping a parameter can change which
//! candidate wins, producing the plan changes that PD then explains.

use crate::catalog::{Catalog, StatsSnapshot};
use crate::config::DbConfig;
use crate::cost::{Cost, CostModel};
use crate::plan::{OperatorKind, Plan};
use crate::{DbError, Result};

/// The outcome of planning: the chosen plan plus the context it was chosen in.
#[derive(Debug, Clone)]
pub struct PlanChoice {
    /// The winning plan.
    pub plan: Plan,
    /// Its estimated cost.
    pub cost: Cost,
    /// The statistics snapshot the decision was based on.
    pub stats: StatsSnapshot,
    /// The configuration in effect at planning time.
    pub config: DbConfig,
    /// Costs of every feasible candidate, `(plan name, total cost)`, cheapest first.
    pub considered: Vec<(String, f64)>,
}

/// The plan selector.
#[derive(Debug, Clone)]
pub struct Optimizer {
    config: DbConfig,
}

impl Optimizer {
    /// Creates an optimizer with the given configuration.
    pub fn new(config: DbConfig) -> Self {
        Optimizer { config }
    }

    /// The configuration used for planning.
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// Whether a candidate plan is feasible under the current catalog and configuration:
    /// every scanned table and used index must exist, and disabled operator families
    /// (index scans, hash joins, nested loops) must not appear.
    pub fn is_feasible(&self, plan: &Plan, catalog: &Catalog) -> bool {
        plan.operators().iter().all(|node| {
            if let Some(table) = &node.table {
                if catalog.table(table).is_none() {
                    return false;
                }
            }
            match node.kind {
                OperatorKind::IndexScan => {
                    if !self.config.enable_indexscan {
                        return false;
                    }
                    match &node.index {
                        Some(index) => catalog.index(index).is_some(),
                        None => false,
                    }
                }
                OperatorKind::HashJoin | OperatorKind::Hash => self.config.enable_hashjoin,
                OperatorKind::NestedLoop => self.config.enable_nestloop,
                _ => true,
            }
        })
    }

    /// Chooses the cheapest feasible candidate using a fresh statistics snapshot.
    ///
    /// # Errors
    /// Returns [`DbError::NoFeasiblePlan`] if no candidate is feasible.
    pub fn choose(&self, candidates: &[Plan], catalog: &Catalog) -> Result<PlanChoice> {
        let stats = catalog.snapshot();
        let model = CostModel::new(self.config.clone());
        let mut feasible: Vec<(Plan, Cost)> = candidates
            .iter()
            .filter(|p| self.is_feasible(p, catalog))
            .map(|p| {
                let cost = model.plan_cost(p, catalog, &stats);
                (p.clone(), cost)
            })
            .collect();
        if feasible.is_empty() {
            return Err(DbError::NoFeasiblePlan);
        }
        feasible.sort_by(|a, b| a.1.total().partial_cmp(&b.1.total()).expect("finite costs"));
        let considered = feasible.iter().map(|(p, c)| (p.name.clone(), c.total())).collect();
        let (plan, cost) = feasible.swap_remove(0);
        Ok(PlanChoice { plan, cost, stats, config: self.config.clone(), considered })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Index, StorageKind, Table, Tablespace};
    use crate::plan::PlanNode;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_tablespace(Tablespace {
            name: "ts".into(),
            volume: "V1".into(),
            storage: StorageKind::SystemManaged,
        })
        .unwrap();
        c.add_table(Table {
            name: "part".into(),
            tablespace: "ts".into(),
            row_count: 2_000_000,
            avg_row_bytes: 156,
            predicate_selectivity: 0.001,
            clustering: 0.9,
        })
        .unwrap();
        c.add_index(Index {
            name: "part_pkey".into(),
            table: "part".into(),
            column: "p_partkey".into(),
            unique: true,
        })
        .unwrap();
        c
    }

    fn index_plan() -> Plan {
        Plan::new("part-index", "lookup", PlanNode::index_scan("part", "part_pkey", 0.001))
    }

    fn seq_plan() -> Plan {
        Plan::new("part-seq", "lookup", PlanNode::seq_scan("part", 0.001))
    }

    #[test]
    fn prefers_index_for_selective_lookup() {
        let cat = catalog();
        let opt = Optimizer::new(DbConfig::default());
        let choice = opt.choose(&[seq_plan(), index_plan()], &cat).unwrap();
        assert_eq!(choice.plan.name, "part-index");
        assert_eq!(choice.considered.len(), 2);
        assert!(choice.considered[0].1 <= choice.considered[1].1);
    }

    #[test]
    fn dropping_the_index_switches_to_seq_scan() {
        let mut cat = catalog();
        let opt = Optimizer::new(DbConfig::default());
        cat.drop_index("part_pkey").unwrap();
        let choice = opt.choose(&[seq_plan(), index_plan()], &cat).unwrap();
        assert_eq!(choice.plan.name, "part-seq");
        assert_eq!(choice.considered.len(), 1);
    }

    #[test]
    fn data_property_change_switches_plans() {
        let mut cat = catalog();
        let opt = Optimizer::new(DbConfig::default());
        // Make the predicate unselective: the seq scan should win now.
        cat.apply_bulk_dml("part", 1.0, 0.9).unwrap();
        let seq = Plan::new("part-seq", "lookup", PlanNode::seq_scan("part", 0.9));
        let idx = Plan::new("part-index", "lookup", PlanNode::index_scan("part", "part_pkey", 0.9));
        let choice = opt.choose(&[seq, idx], &cat).unwrap();
        assert_eq!(choice.plan.name, "part-seq");
    }

    #[test]
    fn config_change_switches_plans() {
        let cat = catalog();
        // Disabling index scans forces the sequential plan regardless of cost.
        let opt = Optimizer::new(DbConfig::default().with_enable_indexscan(false));
        let choice = opt.choose(&[seq_plan(), index_plan()], &cat).unwrap();
        assert_eq!(choice.plan.name, "part-seq");
        // An extreme random_page_cost has the same effect through pricing.
        let opt = Optimizer::new(DbConfig::default().with_random_page_cost(500.0));
        let choice = opt.choose(&[seq_plan(), index_plan()], &cat).unwrap();
        assert_eq!(choice.plan.name, "part-seq");
    }

    #[test]
    fn infeasible_everything_is_an_error() {
        let cat = catalog();
        let opt = Optimizer::new(DbConfig::default());
        // Plan referencing a missing table.
        let ghost = Plan::new("ghost", "q", PlanNode::seq_scan("ghost_table", 0.5));
        assert!(matches!(opt.choose(&[ghost], &cat), Err(DbError::NoFeasiblePlan)));
        assert!(matches!(opt.choose(&[], &cat), Err(DbError::NoFeasiblePlan)));
    }

    #[test]
    fn feasibility_checks_operator_families() {
        let cat = catalog();
        let hash_plan = Plan::new(
            "hj",
            "q",
            PlanNode::hash_join(
                0.5,
                PlanNode::seq_scan("part", 0.1),
                PlanNode::hash(PlanNode::seq_scan("part", 0.1)),
            ),
        );
        let opt_no_hash = Optimizer::new(DbConfig { enable_hashjoin: false, ..DbConfig::default() });
        assert!(!opt_no_hash.is_feasible(&hash_plan, &cat));
        let opt = Optimizer::new(DbConfig::default());
        assert!(opt.is_feasible(&hash_plan, &cat));
        // An index scan without a named index is never feasible.
        let mut broken = index_plan();
        broken.root.index = None;
        assert!(!opt.is_feasible(&broken, &cat));
    }

    #[test]
    fn choice_records_planning_context() {
        let cat = catalog();
        let opt = Optimizer::new(DbConfig::default());
        let choice = opt.choose(&[seq_plan(), index_plan()], &cat).unwrap();
        assert_eq!(choice.stats.row_count("part"), 2_000_000);
        assert_eq!(choice.config, DbConfig::default());
        assert!(choice.cost.total() > 0.0);
    }
}
