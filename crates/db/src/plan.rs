//! Query execution plans: operators, plan trees, numbering and fingerprints.
//!
//! A plan is a tree of operators. Operators are numbered `O1..On` in pre-order (the
//! numbering Figure 1 uses for the 25-operator TPC-H Q2 plan); leaf operators scan a
//! table (sequentially or through an index) and therefore anchor the mapping from the
//! database layer to SAN volumes. Plans carry a structural *fingerprint* so module PD
//! can decide whether satisfactory and unsatisfactory runs used the same plan.

use std::collections::BTreeMap;

use crate::catalog::{Catalog, StatsSnapshot};

/// A plan-operator identifier (`O1`, `O2`, ... in pre-order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OperatorId(pub u32);

impl OperatorId {
    /// The operator's display name (`O7`).
    pub fn name(&self) -> String {
        format!("O{}", self.0)
    }
}

impl std::fmt::Display for OperatorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "O{}", self.0)
    }
}

/// The kind of a plan operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatorKind {
    /// Full sequential scan of a table.
    SeqScan,
    /// Index scan of a table.
    IndexScan,
    /// Hash-table build over the child's output (inner side of a hash join).
    Hash,
    /// Hash join of two children.
    HashJoin,
    /// Nested-loop join of two children.
    NestedLoop,
    /// Merge join of two children.
    MergeJoin,
    /// Sort of the child's output.
    Sort,
    /// Grouping/aggregation over the child's output.
    Aggregate,
    /// Materialisation of the child's output.
    Materialize,
    /// LIMIT over the child's output.
    Limit,
    /// Correlated sub-plan filter: joins the outer child with an aggregated subquery
    /// (how PostgreSQL evaluates TPC-H Q2's `= (select min(...))` predicate).
    SubPlanFilter,
}

impl OperatorKind {
    /// Whether this operator reads base-table data (and therefore touches a volume).
    pub fn is_leaf(self) -> bool {
        matches!(self, OperatorKind::SeqScan | OperatorKind::IndexScan)
    }

    /// Whether the operator must consume its entire input before producing output.
    pub fn is_blocking(self) -> bool {
        matches!(
            self,
            OperatorKind::Hash | OperatorKind::Sort | OperatorKind::Aggregate | OperatorKind::Materialize
        )
    }

    /// Display label used in plan renderings.
    pub fn label(self) -> &'static str {
        match self {
            OperatorKind::SeqScan => "Seq Scan",
            OperatorKind::IndexScan => "Index Scan",
            OperatorKind::Hash => "Hash",
            OperatorKind::HashJoin => "Hash Join",
            OperatorKind::NestedLoop => "Nested Loop",
            OperatorKind::MergeJoin => "Merge Join",
            OperatorKind::Sort => "Sort",
            OperatorKind::Aggregate => "Aggregate",
            OperatorKind::Materialize => "Materialize",
            OperatorKind::Limit => "Limit",
            OperatorKind::SubPlanFilter => "SubPlan Filter",
        }
    }
}

impl std::fmt::Display for OperatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A source of cardinality statistics: live catalog data properties or a frozen
/// planning-time snapshot.
pub trait StatsProvider {
    /// Row count of a table.
    fn row_count(&self, table: &str) -> u64;
    /// Typical predicate selectivity of a table.
    fn selectivity(&self, table: &str) -> f64;
}

impl StatsProvider for Catalog {
    fn row_count(&self, table: &str) -> u64 {
        self.table(table).map(|t| t.row_count).unwrap_or(0)
    }

    fn selectivity(&self, table: &str) -> f64 {
        self.table(table).map(|t| t.predicate_selectivity).unwrap_or(1.0)
    }
}

impl StatsProvider for StatsSnapshot {
    fn row_count(&self, table: &str) -> u64 {
        StatsSnapshot::row_count(self, table)
    }

    fn selectivity(&self, table: &str) -> f64 {
        StatsSnapshot::selectivity(self, table)
    }
}

/// One node of a plan tree.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// The operator number (assigned by [`Plan::new`] in pre-order).
    pub id: OperatorId,
    /// What the operator does.
    pub kind: OperatorKind,
    /// The scanned table, for leaf operators.
    pub table: Option<String>,
    /// The index used, for index scans.
    pub index: Option<String>,
    /// Output selectivity: for scans, the fraction of the table's rows produced; for
    /// all other operators, the fraction of the (largest) input retained.
    pub selectivity: f64,
    /// Child operators (0 for leaves, 1 for unary operators, 2 for joins).
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    fn node(kind: OperatorKind, selectivity: f64, children: Vec<PlanNode>) -> Self {
        PlanNode { id: OperatorId(0), kind, table: None, index: None, selectivity, children }
    }

    /// A sequential scan of `table` keeping `selectivity` of its rows.
    pub fn seq_scan(table: &str, selectivity: f64) -> Self {
        PlanNode { table: Some(table.to_string()), ..Self::node(OperatorKind::SeqScan, selectivity, vec![]) }
    }

    /// An index scan of `table` through `index` keeping `selectivity` of its rows.
    pub fn index_scan(table: &str, index: &str, selectivity: f64) -> Self {
        PlanNode {
            table: Some(table.to_string()),
            index: Some(index.to_string()),
            ..Self::node(OperatorKind::IndexScan, selectivity, vec![])
        }
    }

    /// A hash build over a child.
    pub fn hash(child: PlanNode) -> Self {
        Self::node(OperatorKind::Hash, 1.0, vec![child])
    }

    /// A hash join of two children.
    pub fn hash_join(selectivity: f64, outer: PlanNode, inner: PlanNode) -> Self {
        Self::node(OperatorKind::HashJoin, selectivity, vec![outer, inner])
    }

    /// A nested-loop join of two children.
    pub fn nested_loop(selectivity: f64, outer: PlanNode, inner: PlanNode) -> Self {
        Self::node(OperatorKind::NestedLoop, selectivity, vec![outer, inner])
    }

    /// A merge join of two children.
    pub fn merge_join(selectivity: f64, outer: PlanNode, inner: PlanNode) -> Self {
        Self::node(OperatorKind::MergeJoin, selectivity, vec![outer, inner])
    }

    /// A sort over a child.
    pub fn sort(child: PlanNode) -> Self {
        Self::node(OperatorKind::Sort, 1.0, vec![child])
    }

    /// An aggregation retaining `selectivity` of its input groups.
    pub fn aggregate(selectivity: f64, child: PlanNode) -> Self {
        Self::node(OperatorKind::Aggregate, selectivity, vec![child])
    }

    /// A materialisation of a child.
    pub fn materialize(child: PlanNode) -> Self {
        Self::node(OperatorKind::Materialize, 1.0, vec![child])
    }

    /// A LIMIT retaining `selectivity` of its input.
    pub fn limit(selectivity: f64, child: PlanNode) -> Self {
        Self::node(OperatorKind::Limit, selectivity, vec![child])
    }

    /// A correlated sub-plan filter joining the outer child with a subquery child.
    pub fn subplan_filter(selectivity: f64, outer: PlanNode, subquery: PlanNode) -> Self {
        Self::node(OperatorKind::SubPlanFilter, selectivity, vec![outer, subquery])
    }

    /// Output cardinality of this operator under the given statistics.
    pub fn output_rows(&self, stats: &dyn StatsProvider) -> f64 {
        match self.kind {
            OperatorKind::SeqScan | OperatorKind::IndexScan => {
                let table = self.table.as_deref().unwrap_or("");
                stats.row_count(table) as f64 * self.selectivity.clamp(0.0, 1.0)
            }
            _ => {
                let input = self.children.iter().map(|c| c.output_rows(stats)).fold(0.0_f64, f64::max);
                (input * self.selectivity.clamp(0.0, 1.0)).max(if self.children.is_empty() {
                    0.0
                } else {
                    1.0
                })
            }
        }
    }

    /// Rows this operator has to *process* (the sum of its inputs, or the scanned rows
    /// for leaves) — the driver of its CPU cost.
    pub fn input_rows(&self, stats: &dyn StatsProvider) -> f64 {
        match self.kind {
            OperatorKind::SeqScan => stats.row_count(self.table.as_deref().unwrap_or("")) as f64,
            OperatorKind::IndexScan => self.output_rows(stats).max(1.0),
            _ => self.children.iter().map(|c| c.output_rows(stats)).sum(),
        }
    }

    fn visit<'a>(&'a self, out: &mut Vec<&'a PlanNode>) {
        out.push(self);
        for c in &self.children {
            c.visit(out);
        }
    }

    fn renumber(&mut self, next: &mut u32) {
        self.id = OperatorId(*next);
        *next += 1;
        for c in &mut self.children {
            c.renumber(next);
        }
    }

    fn fingerprint_into(&self, out: &mut String) {
        out.push('(');
        out.push_str(self.kind.label());
        if let Some(t) = &self.table {
            out.push(':');
            out.push_str(t);
        }
        if let Some(i) = &self.index {
            out.push('@');
            out.push_str(i);
        }
        for c in &self.children {
            c.fingerprint_into(out);
        }
        out.push(')');
    }
}

/// A complete, numbered query execution plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// A short name for the plan alternative (e.g. `q2-partsupp-driven`).
    pub name: String,
    /// The query this plan answers (e.g. `TPC-H Q2`).
    pub query: String,
    /// The root operator.
    pub root: PlanNode,
}

impl Plan {
    /// Creates a plan and assigns operator numbers in pre-order starting at `O1`.
    pub fn new(name: impl Into<String>, query: impl Into<String>, mut root: PlanNode) -> Self {
        let mut next = 1;
        root.renumber(&mut next);
        Plan { name: name.into(), query: query.into(), root }
    }

    /// All operators in pre-order (i.e. ordered by operator number).
    pub fn operators(&self) -> Vec<&PlanNode> {
        let mut out = Vec::new();
        self.root.visit(&mut out);
        out
    }

    /// Number of operators in the plan.
    pub fn operator_count(&self) -> usize {
        self.operators().len()
    }

    /// The operator with the given id, if any.
    pub fn operator(&self, id: OperatorId) -> Option<&PlanNode> {
        self.operators().into_iter().find(|n| n.id == id)
    }

    /// The leaf operators (scans), in operator-number order.
    pub fn leaves(&self) -> Vec<&PlanNode> {
        self.operators().into_iter().filter(|n| n.kind.is_leaf()).collect()
    }

    /// The distinct tables the plan scans.
    pub fn tables(&self) -> Vec<String> {
        let mut out: Vec<String> = self.leaves().iter().filter_map(|n| n.table.clone()).collect();
        out.sort();
        out.dedup();
        out
    }

    /// The parent of each operator (the root has no parent).
    pub fn parents(&self) -> BTreeMap<OperatorId, OperatorId> {
        let mut map = BTreeMap::new();
        fn walk(node: &PlanNode, map: &mut BTreeMap<OperatorId, OperatorId>) {
            for c in &node.children {
                map.insert(c.id, node.id);
                walk(c, map);
            }
        }
        walk(&self.root, &mut map);
        map
    }

    /// The ancestors of an operator, nearest first (empty for the root or unknown ids).
    pub fn ancestors_of(&self, id: OperatorId) -> Vec<OperatorId> {
        let parents = self.parents();
        let mut out = Vec::new();
        let mut current = id;
        while let Some(&p) = parents.get(&current) {
            out.push(p);
            current = p;
        }
        out
    }

    /// The operator ids in the subtree rooted at `id` (including `id` itself).
    pub fn subtree_of(&self, id: OperatorId) -> Vec<OperatorId> {
        match self.operator(id) {
            Some(node) => {
                let mut nodes = Vec::new();
                node.visit(&mut nodes);
                nodes.into_iter().map(|n| n.id).collect()
            }
            None => Vec::new(),
        }
    }

    /// A structural fingerprint: two plans with the same operators, shapes, tables and
    /// indexes have equal fingerprints regardless of selectivities or cost estimates.
    pub fn fingerprint(&self) -> String {
        let mut s = String::new();
        self.root.fingerprint_into(&mut s);
        s
    }

    /// Renders the plan as an indented tree (EXPLAIN-style).
    pub fn render(&self) -> String {
        let mut out = String::new();
        fn walk(node: &PlanNode, depth: usize, out: &mut String) {
            let indent = "  ".repeat(depth);
            let target = match (&node.table, &node.index) {
                (Some(t), Some(i)) => format!(" on {t} using {i}"),
                (Some(t), None) => format!(" on {t}"),
                _ => String::new(),
            };
            out.push_str(&format!("{indent}{} {}{}\n", node.id, node.kind, target));
            for c in &node.children {
                walk(c, depth + 1, out);
            }
        }
        walk(&self.root, 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, StorageKind, Table, Tablespace};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_tablespace(Tablespace {
            name: "ts".into(),
            volume: "V1".into(),
            storage: StorageKind::SystemManaged,
        })
        .unwrap();
        for (name, rows) in [("part", 200_000_u64), ("supplier", 10_000)] {
            c.add_table(Table {
                name: name.into(),
                tablespace: "ts".into(),
                row_count: rows,
                avg_row_bytes: 150,
                predicate_selectivity: 0.1,
                clustering: 0.9,
            })
            .unwrap();
        }
        c
    }

    fn small_plan() -> Plan {
        Plan::new(
            "test",
            "join part/supplier",
            PlanNode::sort(PlanNode::hash_join(
                0.5,
                PlanNode::seq_scan("part", 0.1),
                PlanNode::hash(PlanNode::seq_scan("supplier", 1.0)),
            )),
        )
    }

    #[test]
    fn preorder_numbering() {
        let plan = small_plan();
        let ids: Vec<u32> = plan.operators().iter().map(|n| n.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
        assert_eq!(plan.operator_count(), 5);
        assert_eq!(plan.root.id, OperatorId(1));
        assert_eq!(plan.operator(OperatorId(3)).unwrap().kind, OperatorKind::SeqScan);
        assert!(plan.operator(OperatorId(99)).is_none());
        assert_eq!(OperatorId(7).to_string(), "O7");
    }

    #[test]
    fn leaves_and_tables() {
        let plan = small_plan();
        let leaves = plan.leaves();
        assert_eq!(leaves.len(), 2);
        assert_eq!(plan.tables(), vec!["part", "supplier"]);
        assert!(leaves.iter().all(|n| n.kind.is_leaf()));
    }

    #[test]
    fn ancestors_and_subtrees() {
        let plan = small_plan();
        // O3 = seq scan part: ancestors are the hash join (O2) and sort (O1).
        assert_eq!(plan.ancestors_of(OperatorId(3)), vec![OperatorId(2), OperatorId(1)]);
        assert_eq!(plan.ancestors_of(OperatorId(1)), Vec::<OperatorId>::new());
        // Subtree of O4 (hash) contains O4 and O5 (the supplier scan).
        assert_eq!(plan.subtree_of(OperatorId(4)), vec![OperatorId(4), OperatorId(5)]);
        assert!(plan.subtree_of(OperatorId(50)).is_empty());
    }

    #[test]
    fn cardinalities_respond_to_data_properties() {
        let mut cat = catalog();
        let plan = small_plan();
        let scan_part = plan.operator(OperatorId(3)).unwrap();
        assert!((scan_part.output_rows(&cat) - 20_000.0).abs() < 1e-6);
        let join = plan.operator(OperatorId(2)).unwrap();
        let before = join.output_rows(&cat);
        // Triple the part table: the join output grows too.
        cat.apply_bulk_dml("part", 3.0, 0.1).unwrap();
        let after = join.output_rows(&cat);
        assert!(after > before * 2.5);
        // input_rows of a seq scan is the whole table regardless of selectivity.
        assert_eq!(scan_part.input_rows(&cat), 600_000.0);
    }

    #[test]
    fn snapshot_vs_live_cardinalities_diverge_after_dml() {
        let mut cat = catalog();
        let snap = cat.snapshot();
        cat.apply_bulk_dml("part", 5.0, 0.5).unwrap();
        let plan = small_plan();
        let scan = plan.operator(OperatorId(3)).unwrap();
        let estimated = scan.output_rows(&snap);
        let actual = scan.output_rows(&cat);
        assert!(actual >= estimated * 4.9, "estimated {estimated}, actual {actual}");
        assert!(estimated > 0.0);
    }

    #[test]
    fn fingerprint_ignores_selectivity_but_not_structure() {
        let a = small_plan();
        let mut b = small_plan();
        b.root.selectivity = 0.123;
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Different access path -> different fingerprint.
        let c = Plan::new(
            "test2",
            "join part/supplier",
            PlanNode::sort(PlanNode::hash_join(
                0.5,
                PlanNode::index_scan("part", "part_pkey", 0.1),
                PlanNode::hash(PlanNode::seq_scan("supplier", 1.0)),
            )),
        );
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Different join order -> different fingerprint.
        let d = Plan::new(
            "test3",
            "join part/supplier",
            PlanNode::sort(PlanNode::hash_join(
                0.5,
                PlanNode::seq_scan("supplier", 1.0),
                PlanNode::hash(PlanNode::seq_scan("part", 0.1)),
            )),
        );
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn render_shows_operators_and_targets() {
        let text = small_plan().render();
        assert!(text.contains("O1 Sort"));
        assert!(text.contains("Seq Scan on part"));
        assert!(text.lines().count() >= 5);
        let indexed = Plan::new("x", "q", PlanNode::index_scan("part", "part_pkey", 0.01));
        assert!(indexed.render().contains("using part_pkey"));
    }

    #[test]
    fn operator_kind_properties() {
        assert!(OperatorKind::SeqScan.is_leaf());
        assert!(OperatorKind::IndexScan.is_leaf());
        assert!(!OperatorKind::HashJoin.is_leaf());
        assert!(OperatorKind::Sort.is_blocking());
        assert!(OperatorKind::Hash.is_blocking());
        assert!(!OperatorKind::HashJoin.is_blocking());
        assert_eq!(OperatorKind::SubPlanFilter.label(), "SubPlan Filter");
    }
}
