//! Lock-contention model.
//!
//! Scenario 5 of Table 1 injects a *locking-based* database problem: some other session
//! holds conflicting locks on a table the report query scans, so its runs slow down
//! with no SAN symptom at all. The lock manager tracks contention windows per table and
//! charges scan operators a wait time when their run overlaps such a window; it also
//! feeds the `locksHeld` / `lockWaitTime` database metrics.

use diads_monitor::{TimeRange, Timestamp};

/// A window during which another session holds conflicting locks on a table.
#[derive(Debug, Clone, PartialEq)]
pub struct LockContentionWindow {
    /// The locked table.
    pub table: String,
    /// When the contention is in effect.
    pub window: TimeRange,
    /// Average seconds a scan of the table has to wait during the window.
    pub wait_secs_per_scan: f64,
}

/// Tracks lock-contention windows injected into the testbed.
#[derive(Debug, Clone, Default)]
pub struct LockManager {
    windows: Vec<LockContentionWindow>,
}

impl LockManager {
    /// Creates a lock manager with no contention.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a contention window.
    pub fn add_contention(&mut self, window: LockContentionWindow) {
        self.windows.push(window);
    }

    /// All registered windows.
    pub fn windows(&self) -> &[LockContentionWindow] {
        &self.windows
    }

    /// The wait a scan of `table` starting at `t` experiences (seconds).
    pub fn wait_secs(&self, table: &str, t: Timestamp) -> f64 {
        self.windows
            .iter()
            .filter(|w| w.table == table && w.window.contains(t))
            .map(|w| w.wait_secs_per_scan)
            .sum()
    }

    /// Number of extra conflicting locks held at `t` (for the `locksHeld` metric).
    pub fn locks_held(&self, t: Timestamp) -> u64 {
        self.windows.iter().filter(|w| w.window.contains(t)).count() as u64
    }

    /// Whether any contention is active at `t`.
    pub fn any_contention_at(&self, t: Timestamp) -> bool {
        self.locks_held(t) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diads_monitor::Duration;

    fn manager() -> LockManager {
        let mut m = LockManager::new();
        m.add_contention(LockContentionWindow {
            table: "partsupp".into(),
            window: TimeRange::with_duration(Timestamp::new(1_000), Duration::from_hours(2)),
            wait_secs_per_scan: 45.0,
        });
        m
    }

    #[test]
    fn wait_applies_only_inside_the_window_and_table() {
        let m = manager();
        assert_eq!(m.wait_secs("partsupp", Timestamp::new(2_000)), 45.0);
        assert_eq!(m.wait_secs("partsupp", Timestamp::new(999)), 0.0);
        assert_eq!(m.wait_secs("partsupp", Timestamp::new(1_000 + 7_200)), 0.0);
        assert_eq!(m.wait_secs("part", Timestamp::new(2_000)), 0.0);
    }

    #[test]
    fn overlapping_windows_accumulate() {
        let mut m = manager();
        m.add_contention(LockContentionWindow {
            table: "partsupp".into(),
            window: TimeRange::with_duration(Timestamp::new(1_500), Duration::from_mins(30)),
            wait_secs_per_scan: 15.0,
        });
        assert_eq!(m.wait_secs("partsupp", Timestamp::new(1_600)), 60.0);
        assert_eq!(m.locks_held(Timestamp::new(1_600)), 2);
        assert_eq!(m.locks_held(Timestamp::new(100)), 0);
        assert_eq!(m.windows().len(), 2);
    }

    #[test]
    fn any_contention_flag() {
        let m = manager();
        assert!(m.any_contention_at(Timestamp::new(1_000)));
        assert!(!m.any_contention_at(Timestamp::new(0)));
        assert!(!LockManager::new().any_contention_at(Timestamp::new(1_000)));
    }
}
