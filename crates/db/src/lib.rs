//! # diads-db
//!
//! A PostgreSQL-flavoured database *simulator*: the substrate that stands in for the
//! instrumented PostgreSQL server of the paper's testbed (*"Why Did My Query Slow
//! Down?"*, CIDR 2009).
//!
//! DIADS consumes only the per-run monitoring data the database reports — which plan a
//! query used, each operator's start/stop times and record counts, and instance-level
//! metrics (buffer hits, scans, locks). This crate produces that data from a simulated
//! execution whose physics preserve the causal chains the paper's scenarios rely on:
//!
//! * SAN volume contention → slower page reads for leaf operators on that volume →
//!   propagated slowdown of every upstream operator → plan slowdown (scenarios 1, 2, 4);
//! * bulk DML changing data properties → changed record counts and more I/O (and
//!   possibly a different plan chosen by the optimizer) (scenarios 3, 4);
//! * lock contention → scan wait time without any SAN symptom (scenario 5);
//! * configuration-parameter or index changes → different plan choices (module PD's
//!   plan-change analysis).
//!
//! Modules:
//!
//! * [`catalog`] — tables, indexes, tablespaces and their mapping to SAN volumes
//!   (System-Managed vs Database-Managed storage), plus mutable data properties.
//! * [`config`] — the configuration parameters that influence plan selection.
//! * [`plan`] — plan operators, plan trees, operator numbering and plan fingerprints.
//! * [`cost`] — a PostgreSQL-style cost model over the catalog statistics snapshot.
//! * [`optimizer`] — cost-based selection among candidate plans, sensitive to index
//!   availability, data properties and configuration parameters.
//! * [`buffer`] / [`locks`] — buffer-cache hit-ratio and lock-contention models.
//! * [`executor`] — the simulated executor producing per-operator timings, record
//!   counts, the database-level metrics of Figure 4 and the I/O load the run pushes
//!   onto the SAN.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod buffer;
pub mod catalog;
pub mod config;
pub mod cost;
pub mod executor;
pub mod locks;
pub mod optimizer;
pub mod plan;

pub use buffer::BufferCache;
pub use catalog::{Catalog, Index, StorageKind, Table, Tablespace};
pub use config::DbConfig;
pub use cost::{Cost, CostModel};
pub use executor::{ExecutionEnvironment, Executor, OperatorRunStats, QueryRunRecord};
pub use locks::{LockContentionWindow, LockManager};
pub use optimizer::{Optimizer, PlanChoice};
pub use plan::{OperatorId, OperatorKind, Plan, PlanNode};

/// Errors produced by the database layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A referenced catalog object (table, index, tablespace) does not exist.
    UnknownObject(String),
    /// An attempt to create an object whose name already exists.
    DuplicateObject(String),
    /// The plan references an object missing from the catalog.
    InvalidPlan(String),
    /// No feasible plan was available to the optimizer.
    NoFeasiblePlan,
    /// A parameter was outside its valid domain.
    InvalidParameter(&'static str),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::UnknownObject(name) => write!(f, "unknown catalog object: {name}"),
            DbError::DuplicateObject(name) => write!(f, "catalog object already exists: {name}"),
            DbError::InvalidPlan(what) => write!(f, "invalid plan: {what}"),
            DbError::NoFeasiblePlan => write!(f, "no feasible plan for the query"),
            DbError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Convenience result alias for the database layer.
pub type Result<T> = std::result::Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        assert!(DbError::UnknownObject("part".into()).to_string().contains("part"));
        assert!(DbError::DuplicateObject("idx".into()).to_string().contains("idx"));
        assert!(DbError::InvalidPlan("orphan".into()).to_string().contains("orphan"));
        assert!(DbError::NoFeasiblePlan.to_string().contains("feasible"));
        assert!(DbError::InvalidParameter("work_mem").to_string().contains("work_mem"));
    }
}
