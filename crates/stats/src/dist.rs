//! Elementary distribution functions (normal PDF/CDF, error function).
//!
//! The Gaussian-kernel KDE used by DIADS needs the standard normal CDF `Φ` to
//! evaluate `prob(S <= u)` in closed form: the CDF of a Gaussian mixture is the
//! mean of the per-kernel normal CDFs. We implement `erf` with the
//! Abramowitz–Stegun 7.1.26 rational approximation (max absolute error ≈ 1.5e-7),
//! which is far below the 0.8 anomaly-score threshold resolution the workflow needs.

/// Error function `erf(x)` via the Abramowitz–Stegun 7.1.26 approximation.
///
/// Maximum absolute error is about `1.5e-7`, which is more than sufficient for
/// anomaly scores compared against a 0.8 threshold.
pub fn erf(x: f64) -> f64 {
    // Constants of the A&S 7.1.26 approximation.
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;

    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal probability density function.
pub fn std_normal_pdf(x: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// PDF of a normal distribution with the given mean and standard deviation.
///
/// A degenerate distribution (`std_dev == 0`) returns `+inf` at the mean and 0 elsewhere.
pub fn normal_pdf(x: f64, mean: f64, std_dev: f64) -> f64 {
    if std_dev <= 0.0 {
        return if (x - mean).abs() < f64::EPSILON { f64::INFINITY } else { 0.0 };
    }
    std_normal_pdf((x - mean) / std_dev) / std_dev
}

/// CDF of a normal distribution with the given mean and standard deviation.
///
/// A degenerate distribution (`std_dev == 0`) behaves as a step function at the mean.
pub fn normal_cdf(x: f64, mean: f64, std_dev: f64) -> f64 {
    if std_dev <= 0.0 {
        return if x >= mean { 1.0 } else { 0.0 };
    }
    std_normal_cdf((x - mean) / std_dev)
}

/// Natural logarithm of the normal PDF, numerically stable for small densities.
pub fn normal_log_pdf(x: f64, mean: f64, std_dev: f64) -> f64 {
    if std_dev <= 0.0 {
        return if (x - mean).abs() < f64::EPSILON { f64::INFINITY } else { f64::NEG_INFINITY };
    }
    let z = (x - mean) / std_dev;
    -0.5 * z * z - std_dev.ln() - 0.918_938_533_204_672_7 // ln(sqrt(2*pi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} within {tol}");
    }

    #[test]
    fn erf_matches_reference_values() {
        // Reference values from standard tables.
        assert_close(erf(0.0), 0.0, 1e-7);
        assert_close(erf(0.5), 0.520_499_877_8, 2e-7);
        assert_close(erf(1.0), 0.842_700_792_9, 2e-7);
        assert_close(erf(2.0), 0.995_322_265_0, 2e-7);
        assert_close(erf(-1.0), -0.842_700_792_9, 2e-7);
    }

    #[test]
    fn erf_is_odd_and_bounded() {
        for i in 0..100 {
            let x = i as f64 * 0.1;
            assert_close(erf(-x), -erf(x), 1e-8);
            assert!(erf(x) <= 1.0 && erf(x) >= -1.0);
        }
    }

    #[test]
    fn std_normal_cdf_reference_points() {
        assert_close(std_normal_cdf(0.0), 0.5, 1e-7);
        assert_close(std_normal_cdf(1.0), 0.841_344_746, 1e-6);
        assert_close(std_normal_cdf(-1.0), 0.158_655_254, 1e-6);
        assert_close(std_normal_cdf(1.959_964), 0.975, 1e-5);
        assert_close(std_normal_cdf(6.0), 1.0, 1e-6);
        assert_close(std_normal_cdf(-6.0), 0.0, 1e-6);
    }

    #[test]
    fn std_normal_pdf_reference_points() {
        assert_close(std_normal_pdf(0.0), 0.398_942_280_4, 1e-9);
        assert_close(std_normal_pdf(1.0), 0.241_970_724_5, 1e-9);
        assert_close(std_normal_pdf(-1.0), std_normal_pdf(1.0), 1e-12);
    }

    #[test]
    fn scaled_normal_cdf_and_pdf() {
        assert_close(normal_cdf(10.0, 10.0, 2.0), 0.5, 1e-7);
        assert_close(normal_cdf(12.0, 10.0, 2.0), 0.841_344_746, 1e-6);
        assert_close(normal_pdf(10.0, 10.0, 2.0), 0.398_942_280_4 / 2.0, 1e-9);
    }

    #[test]
    fn degenerate_normal_behaves_as_step() {
        assert_eq!(normal_cdf(0.9, 1.0, 0.0), 0.0);
        assert_eq!(normal_cdf(1.0, 1.0, 0.0), 1.0);
        assert_eq!(normal_cdf(1.1, 1.0, 0.0), 1.0);
        assert_eq!(normal_pdf(0.9, 1.0, 0.0), 0.0);
    }

    #[test]
    fn log_pdf_matches_pdf() {
        let cases = [(0.3_f64, 0.0, 1.0), (2.5, 1.0, 0.7), (-4.0, -2.0, 3.0)];
        for (x, m, s) in cases {
            assert_close(normal_log_pdf(x, m, s).exp(), normal_pdf(x, m, s), 1e-9);
        }
    }
}
