//! Gaussian naïve Bayes classifier — the "advanced model" comparator.
//!
//! Section 5 of the paper observes that *"compared to correlation analysis using
//! advanced models (e.g., Bayesian networks), KDE can produce accurate results with few
//! tens of samples, and is more robust to noise in the data."* To make that observation
//! reproducible we need a parametric, model-based comparator that (a) is trained on
//! labelled satisfactory/unsatisfactory runs, (b) needs to estimate per-class
//! parameters, and therefore (c) degrades when the unsatisfactory class has only a
//! handful of noisy samples. A Gaussian naïve Bayes classifier over the operator/metric
//! features is the simplest member of the Bayesian-network family and exposes exactly
//! that trade-off; the `kde_vs_baseline` experiment sweeps sample size and noise to
//! compare it against the KDE detector.

use crate::dist::normal_log_pdf;
use crate::summary::Summary;
use crate::{Result, StatsError};

/// Binary class label for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunLabel {
    /// The run met its performance expectation.
    Satisfactory,
    /// The run violated its performance expectation.
    Unsatisfactory,
}

#[derive(Debug, Clone)]
struct ClassModel {
    prior: f64,
    means: Vec<f64>,
    std_devs: Vec<f64>,
}

impl ClassModel {
    fn log_likelihood(&self, features: &[f64]) -> f64 {
        let mut ll = self.prior.ln();
        for (i, &x) in features.iter().enumerate() {
            ll += normal_log_pdf(x, self.means[i], self.std_devs[i]);
        }
        ll
    }
}

/// A two-class Gaussian naïve Bayes model over fixed-length feature vectors
/// (e.g. one feature per plan operator's running time).
#[derive(Debug, Clone)]
pub struct GaussianNaiveBayes {
    n_features: usize,
    satisfactory: ClassModel,
    unsatisfactory: ClassModel,
}

impl GaussianNaiveBayes {
    /// Fits the model from labelled feature vectors.
    ///
    /// # Errors
    /// Returns an error if the training set is empty, rows have inconsistent lengths,
    /// values are non-finite, or either class has no examples.
    pub fn fit(rows: &[(Vec<f64>, RunLabel)]) -> Result<Self> {
        let Some((first, _)) = rows.first() else {
            return Err(StatsError::EmptySample);
        };
        let n_features = first.len();
        if n_features == 0 {
            return Err(StatsError::InvalidParameter("feature vectors must be non-empty"));
        }
        for (features, _) in rows {
            if features.len() != n_features {
                return Err(StatsError::LengthMismatch { left: n_features, right: features.len() });
            }
            crate::ensure_finite(features)?;
        }
        let build = |label: RunLabel| -> Result<ClassModel> {
            let class_rows: Vec<&Vec<f64>> =
                rows.iter().filter(|(_, l)| *l == label).map(|(f, _)| f).collect();
            if class_rows.is_empty() {
                return Err(StatsError::NotEnoughSamples { required: 1, got: 0 });
            }
            let mut means = Vec::with_capacity(n_features);
            let mut std_devs = Vec::with_capacity(n_features);
            for j in 0..n_features {
                let col: Vec<f64> = class_rows.iter().map(|r| r[j]).collect();
                let s = Summary::from_sample(&col)?;
                let mean = s.mean().expect("non-empty class");
                // Variance smoothing keeps degenerate single-sample classes usable.
                let sd = s.std_dev().unwrap_or(0.0).max(mean.abs() * 1e-2).max(1e-6);
                means.push(mean);
                std_devs.push(sd);
            }
            Ok(ClassModel { prior: class_rows.len() as f64 / rows.len() as f64, means, std_devs })
        };
        Ok(GaussianNaiveBayes {
            n_features,
            satisfactory: build(RunLabel::Satisfactory)?,
            unsatisfactory: build(RunLabel::Unsatisfactory)?,
        })
    }

    /// Number of features per row the model was trained with.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Posterior probability that the feature vector belongs to an unsatisfactory run.
    ///
    /// # Errors
    /// Returns an error if the feature vector has the wrong length or non-finite values.
    pub fn prob_unsatisfactory(&self, features: &[f64]) -> Result<f64> {
        if features.len() != self.n_features {
            return Err(StatsError::LengthMismatch { left: self.n_features, right: features.len() });
        }
        crate::ensure_finite(features)?;
        let ls = self.satisfactory.log_likelihood(features);
        let lu = self.unsatisfactory.log_likelihood(features);
        // Stable softmax over two log-likelihoods.
        let m = ls.max(lu);
        let es = (ls - m).exp();
        let eu = (lu - m).exp();
        Ok(eu / (es + eu))
    }

    /// Classifies a feature vector (threshold 0.5 on the unsatisfactory posterior).
    ///
    /// # Errors
    /// Same conditions as [`Self::prob_unsatisfactory`].
    pub fn classify(&self, features: &[f64]) -> Result<RunLabel> {
        Ok(if self.prob_unsatisfactory(features)? >= 0.5 {
            RunLabel::Unsatisfactory
        } else {
            RunLabel::Satisfactory
        })
    }

    /// Per-feature "blame" score: the normalised contribution of each feature to the
    /// unsatisfactory log-likelihood ratio. Features with higher scores are more
    /// responsible for the model considering the run unsatisfactory; this is how a
    /// model-based comparator would nominate operators for the correlated-operator set.
    ///
    /// # Errors
    /// Same conditions as [`Self::prob_unsatisfactory`].
    pub fn feature_blame(&self, features: &[f64]) -> Result<Vec<f64>> {
        if features.len() != self.n_features {
            return Err(StatsError::LengthMismatch { left: self.n_features, right: features.len() });
        }
        crate::ensure_finite(features)?;
        let contributions: Vec<f64> = (0..self.n_features)
            .map(|j| {
                normal_log_pdf(features[j], self.unsatisfactory.means[j], self.unsatisfactory.std_devs[j])
                    - normal_log_pdf(features[j], self.satisfactory.means[j], self.satisfactory.std_devs[j])
            })
            .collect();
        let max = contributions.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = contributions.iter().cloned().fold(f64::INFINITY, f64::min);
        let range = (max - min).max(1e-12);
        Ok(contributions.iter().map(|c| (c - min) / range).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn training_data() -> Vec<(Vec<f64>, RunLabel)> {
        let mut rows = Vec::new();
        // Satisfactory: feature0 ~ 10, feature1 ~ 5.
        for i in 0..20 {
            let jitter = (i % 5) as f64 * 0.1;
            rows.push((vec![10.0 + jitter, 5.0 - jitter], RunLabel::Satisfactory));
        }
        // Unsatisfactory: feature0 elevated to ~20, feature1 unchanged.
        for i in 0..8 {
            let jitter = (i % 4) as f64 * 0.2;
            rows.push((vec![20.0 + jitter, 5.0 + jitter], RunLabel::Unsatisfactory));
        }
        rows
    }

    #[test]
    fn fit_and_classify() {
        let model = GaussianNaiveBayes::fit(&training_data()).unwrap();
        assert_eq!(model.n_features(), 2);
        assert_eq!(model.classify(&[10.1, 5.0]).unwrap(), RunLabel::Satisfactory);
        assert_eq!(model.classify(&[20.5, 5.1]).unwrap(), RunLabel::Unsatisfactory);
        let p = model.prob_unsatisfactory(&[19.0, 5.0]).unwrap();
        assert!(p > 0.9, "p = {p}");
    }

    #[test]
    fn fit_rejects_bad_input() {
        assert!(GaussianNaiveBayes::fit(&[]).is_err());
        // Missing a class entirely.
        let one_class = vec![(vec![1.0], RunLabel::Satisfactory)];
        assert!(GaussianNaiveBayes::fit(&one_class).is_err());
        // Inconsistent row lengths.
        let ragged = vec![(vec![1.0, 2.0], RunLabel::Satisfactory), (vec![1.0], RunLabel::Unsatisfactory)];
        assert!(GaussianNaiveBayes::fit(&ragged).is_err());
        // Empty feature vectors.
        let empty_features = vec![(vec![], RunLabel::Satisfactory)];
        assert!(GaussianNaiveBayes::fit(&empty_features).is_err());
    }

    #[test]
    fn classify_rejects_wrong_arity() {
        let model = GaussianNaiveBayes::fit(&training_data()).unwrap();
        assert!(model.classify(&[1.0]).is_err());
        assert!(model.prob_unsatisfactory(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn feature_blame_points_at_the_shifted_feature() {
        let model = GaussianNaiveBayes::fit(&training_data()).unwrap();
        let blame = model.feature_blame(&[20.0, 5.0]).unwrap();
        assert_eq!(blame.len(), 2);
        assert!(blame[0] > blame[1], "feature 0 carries the anomaly: {blame:?}");
    }

    #[test]
    fn small_unsatisfactory_class_is_usable_but_weak() {
        // Only two unsatisfactory examples: the model still fits (variance smoothing),
        // illustrating the data-hunger the paper's observation is about.
        let mut rows =
            training_data().into_iter().filter(|(_, l)| *l == RunLabel::Satisfactory).collect::<Vec<_>>();
        rows.push((vec![20.0, 5.0], RunLabel::Unsatisfactory));
        rows.push((vec![20.4, 5.1], RunLabel::Unsatisfactory));
        let model = GaussianNaiveBayes::fit(&rows).unwrap();
        assert_eq!(model.classify(&[20.2, 5.0]).unwrap(), RunLabel::Unsatisfactory);
    }
}
