//! # diads-stats
//!
//! Statistical machine-learning primitives used by the DIADS diagnosis workflow
//! (reproduction of *"Why Did My Query Slow Down?"*, CIDR 2009).
//!
//! The paper's workflow relies on **Kernel Density Estimation** to turn the running
//! times of plan operators (and the performance metrics of SAN components, and
//! operator record counts) into *anomaly scores*: for a random variable `S` observed
//! under satisfactory runs and an observation `u` taken during an unsatisfactory run,
//! the anomaly score is `prob(S <= u)` — close to 1 when `u` is far above the typical
//! range of `S`.
//!
//! This crate provides:
//!
//! * [`kde::Kde`] — Gaussian kernel density estimation with Silverman/Scott bandwidth
//!   selection, closed-form CDF evaluation and the paper's anomaly score.
//! * [`anomaly`] — a common [`anomaly::AnomalyDetector`] trait with KDE, z-score,
//!   percentile-threshold and MAD implementations (the non-KDE detectors are the
//!   ablation baselines used by the `kde_vs_baseline` experiment).
//! * [`bayes::GaussianNaiveBayes`] — the simple parametric "advanced model" comparator
//!   for the paper's observation that KDE needs only a few tens of samples.
//! * [`correlation`] — Pearson / Spearman correlation used by dependency analysis.
//! * [`summary`], [`robust`], [`histogram`] — descriptive statistics shared by the
//!   database-statistics and monitoring layers.
//! * [`spectrum::LatencySpectrum`] — exact nearest-rank percentile reporting
//!   (p50/p99/p999) for the fleet-scale load benchmarks.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod anomaly;
pub mod bayes;
pub mod cache;
pub mod correlation;
pub mod dist;
pub mod histogram;
pub mod kde;
pub mod robust;
pub mod spectrum;
pub mod summary;

pub use anomaly::{AnomalyDetector, KdeDetector, MadDetector, PercentileDetector, ZScoreDetector};
pub use bayes::GaussianNaiveBayes;
pub use cache::ScoringCache;
pub use correlation::{pearson, spearman};
pub use kde::{Bandwidth, Kde};
pub use spectrum::LatencySpectrum;
pub use summary::Summary;

/// Errors produced by the statistics layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// The input sample was empty but the operation requires at least one observation.
    EmptySample,
    /// The input sample had fewer observations than the operation requires.
    NotEnoughSamples {
        /// Number of observations required.
        required: usize,
        /// Number of observations provided.
        got: usize,
    },
    /// The input contained a NaN or infinite value.
    NonFiniteValue,
    /// Two paired samples had different lengths.
    LengthMismatch {
        /// Length of the first sample.
        left: usize,
        /// Length of the second sample.
        right: usize,
    },
    /// A provided parameter was outside its valid domain (e.g. non-positive bandwidth).
    InvalidParameter(&'static str),
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::EmptySample => write!(f, "sample is empty"),
            StatsError::NotEnoughSamples { required, got } => {
                write!(f, "need at least {required} samples, got {got}")
            }
            StatsError::NonFiniteValue => write!(f, "sample contains NaN or infinite values"),
            StatsError::LengthMismatch { left, right } => {
                write!(f, "paired samples have different lengths ({left} vs {right})")
            }
            StatsError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience result alias for the statistics layer.
pub type Result<T> = std::result::Result<T, StatsError>;

pub(crate) fn ensure_finite(sample: &[f64]) -> Result<()> {
    if sample.iter().any(|v| !v.is_finite()) {
        Err(StatsError::NonFiniteValue)
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_readable() {
        assert_eq!(StatsError::EmptySample.to_string(), "sample is empty");
        assert_eq!(
            StatsError::NotEnoughSamples { required: 3, got: 1 }.to_string(),
            "need at least 3 samples, got 1"
        );
        assert_eq!(
            StatsError::LengthMismatch { left: 2, right: 5 }.to_string(),
            "paired samples have different lengths (2 vs 5)"
        );
        assert!(StatsError::InvalidParameter("bandwidth").to_string().contains("bandwidth"));
    }

    #[test]
    fn ensure_finite_rejects_nan_and_inf() {
        assert!(ensure_finite(&[1.0, 2.0]).is_ok());
        assert_eq!(ensure_finite(&[1.0, f64::NAN]), Err(StatsError::NonFiniteValue));
        assert_eq!(ensure_finite(&[f64::INFINITY]), Err(StatsError::NonFiniteValue));
    }
}
