//! Latency-spectrum accounting: exact percentiles over recorded samples.
//!
//! Fleet-scale benchmarks report latency *distributions*, not means — a mean hides
//! exactly the tail (lock convoys, cold engine slots, eviction refits) that
//! fleet-level concurrency work is supposed to fix. [`LatencySpectrum`] collects
//! raw samples and answers nearest-rank percentile queries (p50/p99/p999) exactly:
//! no binning, no approximation, no external dependencies.
//!
//! Samples are kept unsorted on insert and sorted lazily on the first query after
//! a mutation, so recording stays O(1) in the measurement loop and the O(n log n)
//! sort is paid once, off the timed path. Per-thread spectra merge losslessly with
//! [`LatencySpectrum::merge`].

/// An exact latency (or any scalar) distribution: records samples, answers
/// nearest-rank percentile queries.
///
/// Percentiles use the **nearest-rank** definition: `percentile(p)` is the
/// smallest recorded sample `v` such that at least `ceil(p * n)` of the `n`
/// samples are `<= v`. This is exact (always an actually-observed sample), agrees
/// with the common p50/p99/p999 reporting convention, and is what the unit tests
/// pin against an exhaustively-computed reference.
#[derive(Debug, Clone, Default)]
pub struct LatencySpectrum {
    samples: Vec<f64>,
    /// Number of leading samples known to be sorted; the suffix past it is the
    /// unsorted insert buffer.
    sorted_len: usize,
}

impl LatencySpectrum {
    /// Creates an empty spectrum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. Non-finite samples are rejected (a NaN would poison
    /// every order-based query) — callers measuring real durations never produce
    /// them, so dropping is the right degradation.
    pub fn record(&mut self, sample: f64) {
        if sample.is_finite() {
            self.samples.push(sample);
        }
    }

    /// Records every sample of a slice.
    pub fn record_all(&mut self, samples: &[f64]) {
        for &s in samples {
            self.record(s);
        }
    }

    /// Merges another spectrum's samples into this one (lossless: percentiles of
    /// the merged spectrum are percentiles of the union of samples).
    pub fn merge(&mut self, other: &LatencySpectrum) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if self.sorted_len < self.samples.len() {
            // Finite-only samples: total_cmp == partial order, no NaN to place.
            self.samples.sort_unstable_by(f64::total_cmp);
            self.sorted_len = self.samples.len();
        }
    }

    /// The nearest-rank percentile for `p` in `[0, 1]`: the smallest sample with
    /// at least `ceil(p * n)` samples at or below it (`p = 0` returns the
    /// minimum). `None` when empty or `p` is outside `[0, 1]`.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        if self.samples.is_empty() || !(0.0..=1.0).contains(&p) {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
        Some(self.samples[rank - 1])
    }

    /// The median (nearest-rank p50).
    pub fn p50(&mut self) -> Option<f64> {
        self.percentile(0.50)
    }

    /// The 99th percentile.
    pub fn p99(&mut self) -> Option<f64> {
        self.percentile(0.99)
    }

    /// The 99.9th percentile.
    pub fn p999(&mut self) -> Option<f64> {
        self.percentile(0.999)
    }

    /// The smallest recorded sample.
    pub fn min(&mut self) -> Option<f64> {
        self.percentile(0.0)
    }

    /// The largest recorded sample.
    pub fn max(&mut self) -> Option<f64> {
        self.percentile(1.0)
    }

    /// The arithmetic mean of the recorded samples.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Definition-faithful reference: scan every recorded sample and return the
    /// smallest one with at least `ceil(p * n)` samples `<=` it. O(n²), used only
    /// to pin the fast path on small inputs.
    fn exhaustive_percentile(samples: &[f64], p: f64) -> Option<f64> {
        if samples.is_empty() || !(0.0..=1.0).contains(&p) {
            return None;
        }
        let n = samples.len();
        let need = ((p * n as f64).ceil() as usize).clamp(1, n);
        samples
            .iter()
            .copied()
            .filter(|&v| samples.iter().filter(|&&w| w <= v).count() >= need)
            .min_by(f64::total_cmp)
    }

    fn spectrum_of(samples: &[f64]) -> LatencySpectrum {
        let mut s = LatencySpectrum::new();
        s.record_all(samples);
        s
    }

    #[test]
    fn known_distribution_pins_p50_p99_p999() {
        // 1..=1000 in shuffled order: every percentile is computable by hand.
        let mut values: Vec<f64> = (1..=1000).map(|v| v as f64).collect();
        // Deterministic shuffle (LCG index swap) so sortedness is actually exercised.
        let mut state = 88172645463325252u64;
        for i in (1..values.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            values.swap(i, (state as usize) % (i + 1));
        }
        let mut s = spectrum_of(&values);
        assert_eq!(s.len(), 1000);
        assert_eq!(s.p50(), Some(500.0));
        assert_eq!(s.p99(), Some(990.0));
        assert_eq!(s.p999(), Some(999.0));
        assert_eq!(s.percentile(1.0), Some(1000.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(1000.0));
        assert_eq!(s.mean(), Some(500.5));
    }

    #[test]
    fn matches_exhaustive_reference_on_varied_distributions() {
        let distributions: Vec<Vec<f64>> = vec![
            vec![42.0],
            vec![1.0, 2.0],
            vec![5.0, 5.0, 5.0, 5.0],
            vec![-3.5, 0.0, 0.0, 2.25, 7.0, 7.0, 100.0],
            (0..97).map(|i| ((i * 37) % 11) as f64 * 0.5 - 2.0).collect(),
            (0..50).map(|i| (i as f64).powi(2)).rev().collect(),
        ];
        let ps = [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
        for (d, samples) in distributions.iter().enumerate() {
            let mut s = spectrum_of(samples);
            for &p in &ps {
                assert_eq!(s.percentile(p), exhaustive_percentile(samples, p), "distribution {d}, p={p}");
            }
        }
    }

    #[test]
    fn empty_and_out_of_range_queries_are_none() {
        let mut s = LatencySpectrum::new();
        assert!(s.is_empty());
        assert_eq!(s.p50(), None);
        assert_eq!(s.mean(), None);
        s.record(1.0);
        assert_eq!(s.percentile(-0.1), None);
        assert_eq!(s.percentile(1.1), None);
        assert_eq!(s.percentile(f64::NAN), None);
        assert_eq!(s.p50(), Some(1.0));
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let mut s = LatencySpectrum::new();
        s.record_all(&[1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 3.0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.max(), Some(3.0));
    }

    #[test]
    fn merge_is_lossless_and_interleaves_with_queries() {
        let mut a = spectrum_of(&[1.0, 3.0, 5.0]);
        assert_eq!(a.p50(), Some(3.0)); // force a sort before the merge
        let b = spectrum_of(&[2.0, 4.0]);
        a.merge(&b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.p50(), Some(3.0));
        assert_eq!(a.max(), Some(5.0));
        // Recording after a query re-sorts lazily and stays exact: with
        // [0.5, 1, 2, 3, 4, 5] the nearest-rank p50 is the 3rd of 6 samples.
        a.record(0.5);
        assert_eq!(a.min(), Some(0.5));
        assert_eq!(a.p50(), Some(2.0));
    }
}
