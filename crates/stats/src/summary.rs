//! Descriptive statistics over a sample of `f64` observations.

use crate::{ensure_finite, Result, StatsError};

/// A one-pass descriptive summary of a sample.
///
/// Built with Welford's online algorithm so it can also be updated incrementally
/// (used by the monitoring collector when averaging within a sampling interval).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY, sum: 0.0 }
    }

    /// Builds a summary from a full sample.
    ///
    /// # Errors
    /// Returns [`StatsError::NonFiniteValue`] if the sample contains NaN/inf.
    pub fn from_sample(sample: &[f64]) -> Result<Self> {
        ensure_finite(sample)?;
        let mut s = Summary::new();
        for &v in sample {
            s.push(v);
        }
        Ok(s)
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean = (n1 * self.mean + n2 * other.mean) / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of observations (0 for an empty summary).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; `None` for an empty summary.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Sample variance (n-1 denominator); `None` with fewer than two observations.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Population variance (n denominator); `None` for an empty summary.
    pub fn population_variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Minimum observation; `None` for an empty summary.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation; `None` for an empty summary.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// Arithmetic mean of a sample.
///
/// # Errors
/// Returns [`StatsError::EmptySample`] on an empty slice.
pub fn mean(sample: &[f64]) -> Result<f64> {
    if sample.is_empty() {
        return Err(StatsError::EmptySample);
    }
    ensure_finite(sample)?;
    Ok(sample.iter().sum::<f64>() / sample.len() as f64)
}

/// Sample standard deviation (n-1 denominator).
///
/// # Errors
/// Returns [`StatsError::NotEnoughSamples`] if fewer than 2 observations are given.
pub fn std_dev(sample: &[f64]) -> Result<f64> {
    if sample.len() < 2 {
        return Err(StatsError::NotEnoughSamples { required: 2, got: sample.len() });
    }
    let s = Summary::from_sample(sample)?;
    Ok(s.std_dev().expect("at least two samples"))
}

/// Linear-interpolation quantile (`q` in `[0, 1]`) of a sample.
///
/// # Errors
/// Returns [`StatsError::EmptySample`] on an empty slice and
/// [`StatsError::InvalidParameter`] if `q` is outside `[0, 1]`.
pub fn quantile(sample: &[f64], q: f64) -> Result<f64> {
    if sample.is_empty() {
        return Err(StatsError::EmptySample);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter("quantile must be in [0, 1]"));
    }
    ensure_finite(sample)?;
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median of a sample (50th percentile).
pub fn median(sample: &[f64]) -> Result<f64> {
    quantile(sample, 0.5)
}

/// Interquartile range (Q3 - Q1).
pub fn iqr(sample: &[f64]) -> Result<f64> {
    Ok(quantile(sample, 0.75)? - quantile(sample, 0.25)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let s = Summary::from_sample(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count(), 8);
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((s.population_variance().unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(s.min().unwrap(), 2.0);
        assert_eq!(s.max().unwrap(), 9.0);
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn empty_summary_returns_none() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_matches_single_pass() {
        let all = [1.0, 2.0, 3.5, 7.25, -1.0, 0.0, 10.0];
        let mut left = Summary::from_sample(&all[..3]).unwrap();
        let right = Summary::from_sample(&all[3..]).unwrap();
        left.merge(&right);
        let whole = Summary::from_sample(&all).unwrap();
        assert_eq!(left.count(), whole.count());
        assert!((left.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-12);
        assert!((left.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::from_sample(&[1.0, 2.0]).unwrap();
        let before = s.clone();
        s.merge(&Summary::new());
        assert_eq!(s, before);

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e.mean(), before.mean());
        assert_eq!(e.count(), before.count());
    }

    #[test]
    fn mean_and_std_dev_functions() {
        assert!((mean(&[1.0, 2.0, 3.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!(mean(&[]).is_err());
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((sd - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!(std_dev(&[1.0]).is_err());
    }

    #[test]
    fn quantiles_and_median() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&data, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&data, 1.0).unwrap(), 5.0);
        assert_eq!(median(&data).unwrap(), 3.0);
        assert_eq!(quantile(&data, 0.25).unwrap(), 2.0);
        // Interpolated quantile on even-sized sample.
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 2.5);
        assert!((iqr(&data).unwrap() - 2.0).abs() < 1e-12);
        assert!(quantile(&data, 1.5).is_err());
        assert!(quantile(&[], 0.5).is_err());
    }

    #[test]
    fn rejects_non_finite() {
        assert!(Summary::from_sample(&[1.0, f64::NAN]).is_err());
        assert!(mean(&[f64::INFINITY]).is_err());
    }
}
