//! Histograms: equi-width and equi-depth.
//!
//! Used in two places: the database-statistics layer keeps equi-depth histograms of
//! column values (they drive selectivity estimation in the simulated optimizer, which
//! module PD's plan-change analysis reasons about), and the experiment harnesses use
//! equi-width histograms to summarise score distributions.

use crate::{ensure_finite, Result, StatsError};

/// An equi-width histogram over a fixed range.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiWidthHistogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
    total: u64,
    below: u64,
    above: u64,
}

impl EquiWidthHistogram {
    /// Creates a histogram with `buckets` equal-width buckets spanning `[min, max]`.
    ///
    /// # Errors
    /// Returns [`StatsError::InvalidParameter`] if `buckets == 0` or `min >= max`.
    pub fn new(min: f64, max: f64, buckets: usize) -> Result<Self> {
        if buckets == 0 {
            return Err(StatsError::InvalidParameter("bucket count must be positive"));
        }
        if min >= max || !min.is_finite() || !max.is_finite() {
            return Err(StatsError::InvalidParameter("histogram range must be finite and non-empty"));
        }
        Ok(EquiWidthHistogram { min, max, counts: vec![0; buckets], total: 0, below: 0, above: 0 })
    }

    /// Adds one observation. Values outside the range are counted in overflow bins.
    pub fn add(&mut self, value: f64) {
        self.total += 1;
        if value < self.min {
            self.below += 1;
            return;
        }
        if value > self.max {
            self.above += 1;
            return;
        }
        let width = (self.max - self.min) / self.counts.len() as f64;
        let mut idx = ((value - self.min) / width) as usize;
        if idx >= self.counts.len() {
            idx = self.counts.len() - 1; // value == max
        }
        self.counts[idx] += 1;
    }

    /// Bucket counts (excluding overflow bins).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations added, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.below
    }

    /// Observations above the range.
    pub fn overflow(&self) -> u64 {
        self.above
    }

    /// The `[low, high)` bounds of bucket `i` (the last bucket is inclusive of `max`).
    pub fn bucket_bounds(&self, i: usize) -> Option<(f64, f64)> {
        if i >= self.counts.len() {
            return None;
        }
        let width = (self.max - self.min) / self.counts.len() as f64;
        Some((self.min + i as f64 * width, self.min + (i + 1) as f64 * width))
    }

    /// Fraction of in-range observations falling at or below `value`
    /// (linear interpolation within the containing bucket).
    pub fn cdf(&self, value: f64) -> f64 {
        let in_range = self.total - self.below - self.above;
        if in_range == 0 {
            return if value >= self.max { 1.0 } else { 0.0 };
        }
        if value < self.min {
            return 0.0;
        }
        if value >= self.max {
            return 1.0;
        }
        let width = (self.max - self.min) / self.counts.len() as f64;
        let idx = (((value - self.min) / width) as usize).min(self.counts.len() - 1);
        let mut below_count: u64 = self.counts[..idx].iter().sum();
        let frac_in_bucket = (value - (self.min + idx as f64 * width)) / width;
        let interpolated = self.counts[idx] as f64 * frac_in_bucket;
        below_count += interpolated as u64;
        (below_count as f64 + (interpolated - interpolated.floor())) / in_range as f64
    }
}

/// An equi-depth (equi-height) histogram: bucket boundaries chosen so each bucket holds
/// approximately the same number of observations. This is the PostgreSQL-style
/// structure used for selectivity estimation in `diads-db`.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiDepthHistogram {
    /// `bounds.len() == buckets + 1`; bucket `i` covers `[bounds[i], bounds[i+1]]`.
    bounds: Vec<f64>,
    rows_per_bucket: f64,
    total_rows: u64,
}

impl EquiDepthHistogram {
    /// Builds an equi-depth histogram with the requested number of buckets.
    ///
    /// # Errors
    /// Returns an error for empty/non-finite samples or a zero bucket count.
    pub fn build(sample: &[f64], buckets: usize) -> Result<Self> {
        if buckets == 0 {
            return Err(StatsError::InvalidParameter("bucket count must be positive"));
        }
        if sample.is_empty() {
            return Err(StatsError::EmptySample);
        }
        ensure_finite(sample)?;
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let buckets = buckets.min(sorted.len());
        let mut bounds = Vec::with_capacity(buckets + 1);
        for i in 0..=buckets {
            let pos = (i as f64 / buckets as f64) * (sorted.len() - 1) as f64;
            bounds.push(sorted[pos.round() as usize]);
        }
        Ok(EquiDepthHistogram {
            bounds,
            rows_per_bucket: sample.len() as f64 / buckets as f64,
            total_rows: sample.len() as u64,
        })
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total number of rows the histogram summarises.
    pub fn total_rows(&self) -> u64 {
        self.total_rows
    }

    /// Bucket boundaries (length = buckets + 1).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Estimated selectivity of the predicate `value <= x` in `[0, 1]`.
    pub fn selectivity_le(&self, x: f64) -> f64 {
        let lo = self.bounds[0];
        let hi = self.bounds[self.bounds.len() - 1];
        if x < lo {
            return 0.0;
        }
        if x >= hi {
            return 1.0;
        }
        let mut rows = 0.0;
        for i in 0..self.bucket_count() {
            let (b_lo, b_hi) = (self.bounds[i], self.bounds[i + 1]);
            if x >= b_hi {
                rows += self.rows_per_bucket;
            } else if x >= b_lo {
                let width = (b_hi - b_lo).max(f64::EPSILON);
                rows += self.rows_per_bucket * ((x - b_lo) / width);
                break;
            } else {
                break;
            }
        }
        (rows / self.total_rows as f64).clamp(0.0, 1.0)
    }

    /// Estimated selectivity of the range predicate `lo <= value <= hi`.
    pub fn selectivity_range(&self, lo: f64, hi: f64) -> f64 {
        if hi < lo {
            return 0.0;
        }
        (self.selectivity_le(hi) - self.selectivity_le(lo)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equi_width_counts_and_bounds() {
        let mut h = EquiWidthHistogram::new(0.0, 10.0, 5).unwrap();
        for v in [0.5, 1.5, 2.5, 3.5, 9.9, 10.0, -1.0, 11.0] {
            h.add(v);
        }
        assert_eq!(h.total(), 8);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.counts().iter().sum::<u64>(), 6);
        assert_eq!(h.bucket_bounds(0), Some((0.0, 2.0)));
        assert_eq!(h.bucket_bounds(4), Some((8.0, 10.0)));
        assert_eq!(h.bucket_bounds(5), None);
        // max value lands in the last bucket, not overflow
        assert_eq!(h.counts()[4], 2);
    }

    #[test]
    fn equi_width_invalid_params() {
        assert!(EquiWidthHistogram::new(0.0, 10.0, 0).is_err());
        assert!(EquiWidthHistogram::new(10.0, 0.0, 5).is_err());
        assert!(EquiWidthHistogram::new(0.0, f64::INFINITY, 5).is_err());
    }

    #[test]
    fn equi_width_cdf_monotone() {
        let mut h = EquiWidthHistogram::new(0.0, 100.0, 20).unwrap();
        for i in 0..1000 {
            h.add((i % 100) as f64);
        }
        let mut prev = -1.0;
        for x in [0.0, 10.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            let c = h.cdf(x);
            assert!(c >= prev);
            assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
        assert!((h.cdf(50.0) - 0.5).abs() < 0.06);
    }

    #[test]
    fn equi_depth_selectivity_uniform() {
        let sample: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = EquiDepthHistogram::build(&sample, 10).unwrap();
        assert_eq!(h.bucket_count(), 10);
        assert_eq!(h.total_rows(), 1000);
        assert!((h.selectivity_le(499.0) - 0.5).abs() < 0.02);
        assert_eq!(h.selectivity_le(-10.0), 0.0);
        assert_eq!(h.selectivity_le(2000.0), 1.0);
        assert!((h.selectivity_range(250.0, 750.0) - 0.5).abs() < 0.02);
        assert_eq!(h.selectivity_range(700.0, 300.0), 0.0);
    }

    #[test]
    fn equi_depth_skewed_data() {
        // 90% of values are 0..10, 10% are 1000..1010: equi-depth adapts its bounds.
        let mut sample = Vec::new();
        for i in 0..900 {
            sample.push((i % 10) as f64);
        }
        for i in 0..100 {
            sample.push(1000.0 + (i % 10) as f64);
        }
        let h = EquiDepthHistogram::build(&sample, 10).unwrap();
        let sel_small = h.selectivity_le(10.0);
        assert!(sel_small > 0.8, "most mass below 10: {sel_small}");
        assert!(h.selectivity_range(500.0, 900.0) < 0.05);
    }

    #[test]
    fn equi_depth_errors() {
        assert!(EquiDepthHistogram::build(&[], 4).is_err());
        assert!(EquiDepthHistogram::build(&[1.0, 2.0], 0).is_err());
        assert!(EquiDepthHistogram::build(&[1.0, f64::NAN], 4).is_err());
    }

    #[test]
    fn equi_depth_more_buckets_than_samples() {
        let h = EquiDepthHistogram::build(&[1.0, 2.0, 3.0], 10).unwrap();
        assert!(h.bucket_count() <= 3);
        assert_eq!(h.selectivity_le(3.0), 1.0);
    }
}
