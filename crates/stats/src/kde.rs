//! Gaussian Kernel Density Estimation and the DIADS anomaly score.
//!
//! Module CO of the paper fits a KDE to the running times of each operator over the
//! *satisfactory* runs of a plan, and scores an observation `u` taken from an
//! *unsatisfactory* run with `prob(S <= u)`; operators whose score exceeds a threshold
//! (0.8 in the paper's evaluation) form the correlated-operator set. Modules DA and CR
//! apply exactly the same machinery to component performance metrics and operator
//! record counts.

use crate::dist::{normal_cdf, normal_pdf};
use crate::summary::Summary;
use crate::{ensure_finite, Result, StatsError};

/// Bandwidth-selection strategy for the Gaussian kernel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Bandwidth {
    /// Silverman's rule of thumb: `0.9 * min(sd, IQR/1.34) * n^(-1/5)`.
    ///
    /// This is the default; it is robust for the small (few tens of samples)
    /// unimodal samples the diagnosis workflow works with.
    #[default]
    Silverman,
    /// Scott's rule: `1.06 * sd * n^(-1/5)`.
    Scott,
    /// A fixed, caller-supplied bandwidth (must be positive).
    Fixed(f64),
}

/// A one-dimensional Gaussian kernel density estimate.
///
/// The sample is kept **sorted** after fitting: evaluation exploits the ordering to
/// skip kernels that are many bandwidths away from the query point, so CDF queries in
/// the tails are O(log n) instead of O(n). This matters because the diagnosis
/// workflow's anomaly scores are mostly tail queries (that is what makes them
/// anomalies).
#[derive(Debug, Clone)]
pub struct Kde {
    /// Sorted ascending.
    samples: Vec<f64>,
    bandwidth: f64,
}

/// Number of bandwidths beyond which a Gaussian kernel's contribution is treated as
/// fully converged (Φ(±9) differs from 1/0 by ~1e-19, far below f64 summation noise).
const KERNEL_CUTOFF_BANDWIDTHS: f64 = 9.0;

/// Minimum bandwidth used when the sample is (nearly) degenerate.
///
/// Production monitoring data is frequently quantised (e.g. an idle metric that is
/// exactly 0 for every satisfactory run); a zero bandwidth would turn the CDF into a
/// step function and make every later observation maximally anomalous. The floor is
/// relative to the sample magnitude so the score stays well-behaved.
fn bandwidth_floor(samples: &[f64]) -> f64 {
    let scale = samples.iter().fold(0.0_f64, |acc, v| acc.max(v.abs()));
    (scale * 1e-3).max(1e-9)
}

impl Kde {
    /// Fits a KDE with the default (Silverman) bandwidth.
    ///
    /// # Errors
    /// Returns an error if the sample is empty or contains non-finite values.
    pub fn fit(samples: &[f64]) -> Result<Self> {
        Self::fit_with(samples, Bandwidth::Silverman)
    }

    /// Fits a KDE with an explicit bandwidth strategy.
    ///
    /// # Errors
    /// Returns an error if the sample is empty, contains non-finite values, or a
    /// non-positive fixed bandwidth is supplied.
    pub fn fit_with(samples: &[f64], bandwidth: Bandwidth) -> Result<Self> {
        if samples.is_empty() {
            return Err(StatsError::EmptySample);
        }
        ensure_finite(samples)?;
        // Canonicalise *before* bandwidth selection: the data-driven rules run a
        // Welford pass whose floating-point result is sensitive to input order in
        // the last ULPs. Deriving them from the sorted sample makes a fit a pure
        // function of the sample multiset — the property that lets an incremental
        // merge-extension ([`Kde::extended`]) reproduce a cold fit bit for bit.
        let mut sorted = samples.to_vec();
        sorted.sort_unstable_by(f64::total_cmp);
        let h = resolve_bandwidth(&sorted, bandwidth)?;
        Ok(Kde { samples: sorted, bandwidth: h })
    }

    /// Rebuilds an estimate from a previously fitted (sorted ascending) sample and
    /// bandwidth — the deserialisation counterpart of [`Kde::samples`] and
    /// [`Kde::bandwidth`], used to restore persisted scoring caches.
    ///
    /// # Errors
    /// Rejects empty or non-finite samples, unsorted input, and a non-positive or
    /// non-finite bandwidth.
    pub fn from_parts(samples: Vec<f64>, bandwidth: f64) -> Result<Self> {
        if samples.is_empty() {
            return Err(StatsError::EmptySample);
        }
        ensure_finite(&samples)?;
        if samples.windows(2).any(|w| w[0].total_cmp(&w[1]).is_gt()) {
            return Err(StatsError::InvalidParameter("samples must be sorted ascending"));
        }
        if bandwidth <= 0.0 || !bandwidth.is_finite() {
            return Err(StatsError::InvalidParameter("bandwidth must be positive"));
        }
        Ok(Kde { samples, bandwidth })
    }

    /// Grows the estimate with `delta` under the default (Silverman) rule — the
    /// incremental counterpart of [`Kde::fit`].
    ///
    /// # Errors
    /// Returns an error if `delta` contains non-finite values.
    pub fn extended(&self, delta: &[f64]) -> Result<Self> {
        self.extended_with(delta, Bandwidth::Silverman)
    }

    /// Grows the estimate by merge-inserting `delta` into the sorted sample and
    /// re-deriving the bandwidth over the merged sample: O(new log new + n) instead
    /// of the O((n+new) log (n+new)) full re-sort.
    ///
    /// **Bit-identical to `Kde::fit_with(&concat, rule)`** over the concatenated
    /// sample: a `total_cmp` merge of two `total_cmp`-sorted halves yields the same
    /// vector as sorting the concatenation (equal keys have equal bit patterns),
    /// and the bandwidth is re-derived exactly over that vector — when the
    /// bandwidth would change, it is recomputed, never approximated, so there is no
    /// drift for a fallback to correct.
    ///
    /// # Errors
    /// Returns an error if `delta` contains non-finite values (or `rule` carries an
    /// invalid fixed bandwidth).
    pub fn extended_with(&self, delta: &[f64], rule: Bandwidth) -> Result<Self> {
        ensure_finite(delta)?;
        if delta.is_empty() {
            return Ok(self.clone());
        }
        let mut sorted_delta = delta.to_vec();
        sorted_delta.sort_unstable_by(f64::total_cmp);
        let mut merged = Vec::with_capacity(self.samples.len() + sorted_delta.len());
        let (mut i, mut j) = (0, 0);
        while i < self.samples.len() && j < sorted_delta.len() {
            if self.samples[i].total_cmp(&sorted_delta[j]).is_gt() {
                merged.push(sorted_delta[j]);
                j += 1;
            } else {
                merged.push(self.samples[i]);
                i += 1;
            }
        }
        merged.extend_from_slice(&self.samples[i..]);
        merged.extend_from_slice(&sorted_delta[j..]);
        let h = resolve_bandwidth(&merged, rule)?;
        Ok(Kde { samples: merged, bandwidth: h })
    }

    /// The bandwidth actually used by this estimate.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Number of observations the estimate is built from.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the estimate is built from an empty sample (never true for a
    /// successfully constructed [`Kde`]).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The underlying sample, sorted ascending.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Indices of the samples whose kernels contribute non-negligibly at `x`.
    ///
    /// Samples below the window contribute a converged CDF term of 1 and a PDF term
    /// of 0; samples above it contribute 0 to both.
    fn active_window(&self, x: f64) -> (usize, usize) {
        let cut = KERNEL_CUTOFF_BANDWIDTHS * self.bandwidth;
        let lo = self.samples.partition_point(|&s| s < x - cut);
        let hi = self.samples.partition_point(|&s| s <= x + cut);
        (lo, hi)
    }

    /// Estimated probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let n = self.samples.len() as f64;
        let (lo, hi) = self.active_window(x);
        self.samples[lo..hi].iter().map(|&s| normal_pdf(x, s, self.bandwidth)).sum::<f64>() / n
    }

    /// Estimated cumulative distribution `P(S <= x)`.
    ///
    /// For a Gaussian kernel this has the closed form
    /// `(1/n) Σ Φ((x − s_i) / h)`, so no numerical integration is needed. Because the
    /// sample is sorted, kernels that have fully converged at `x` (everything more
    /// than [`KERNEL_CUTOFF_BANDWIDTHS`] bandwidths away) are counted without
    /// evaluating `Φ`: tail queries cost O(log n).
    pub fn cdf(&self, x: f64) -> f64 {
        let n = self.samples.len() as f64;
        let (lo, hi) = self.active_window(x);
        let converged = lo as f64; // samples far below x: Φ ≈ 1
        let active: f64 = self.samples[lo..hi].iter().map(|&s| normal_cdf(x, s, self.bandwidth)).sum();
        ((converged + active) / n).clamp(0.0, 1.0)
    }

    /// Batch evaluation of the anomaly score for many observations.
    ///
    /// Scoring `k` observations against one fit is the workflow's common case (every
    /// unsatisfactory run is scored against the same satisfactory history); this
    /// amortises the fit and keeps the per-observation cost at one sorted-window scan.
    pub fn score_many(&self, observations: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(observations.len());
        self.score_many_into(observations, &mut out);
        out
    }

    /// Like [`Kde::score_many`], but reuses a caller-owned output buffer so repeated
    /// batch scoring performs zero allocations.
    pub fn score_many_into(&self, observations: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(observations.iter().map(|&u| self.cdf(u)));
    }

    /// The DIADS anomaly score of an observation `u`: `prob(S <= u)`.
    ///
    /// Values close to 1 mean `u` is significantly above the satisfactory range of the
    /// variable; the paper flags scores above 0.8.
    pub fn anomaly_score(&self, u: f64) -> f64 {
        self.cdf(u)
    }

    /// Anomaly score of a *set* of observations, scored by their mean.
    ///
    /// The workflow frequently has several unsatisfactory runs; the paper scores the
    /// observed value of each unsatisfactory run and DIADS aggregates them. Scoring the
    /// mean observation is robust when only a handful of unsatisfactory runs exist.
    ///
    /// # Errors
    /// Returns an error if `observations` is empty or non-finite.
    pub fn anomaly_score_mean(&self, observations: &[f64]) -> Result<f64> {
        Ok(self.anomaly_score(crate::summary::mean(observations)?))
    }

    /// Two-sided score of a *set* of observations, scored by their mean — the
    /// symmetric counterpart of [`Kde::anomaly_score_mean`], sharing its empty-sample
    /// policy.
    ///
    /// # Errors
    /// Returns an error if `observations` is empty or non-finite.
    pub fn two_sided_score_mean(&self, observations: &[f64]) -> Result<f64> {
        Ok(self.two_sided_score(crate::summary::mean(observations)?))
    }

    /// Two-sided "unusualness" score: `2 * |prob(S <= u) - 0.5|`.
    ///
    /// Useful for metrics where a drop is as suspicious as a rise (e.g. cache hit
    /// ratios); 0 means perfectly typical, 1 means extreme in either direction.
    pub fn two_sided_score(&self, u: f64) -> f64 {
        (2.0 * (self.cdf(u) - 0.5)).abs()
    }
}

/// Resolves a [`Bandwidth`] strategy over an already-canonicalised (sorted) sample,
/// applying the degenerate-sample floor. The single bandwidth path shared by cold
/// fits and incremental extensions — both must agree bit for bit.
fn resolve_bandwidth(sorted: &[f64], bandwidth: Bandwidth) -> Result<f64> {
    let h = match bandwidth {
        Bandwidth::Fixed(h) => {
            if h <= 0.0 || !h.is_finite() {
                return Err(StatsError::InvalidParameter("bandwidth must be positive"));
            }
            h
        }
        Bandwidth::Silverman => silverman_bandwidth(sorted),
        Bandwidth::Scott => scott_bandwidth(sorted),
    };
    Ok(h.max(bandwidth_floor(sorted)))
}

/// Silverman's rule-of-thumb bandwidth.
///
/// Uses the robust spread `min(sd, IQR / 1.34)`; falls back to the non-zero one when
/// either is zero, and to a relative floor when the sample is degenerate.
pub fn silverman_bandwidth(samples: &[f64]) -> f64 {
    let n = samples.len() as f64;
    let sd = Summary::from_sample(samples).ok().and_then(|s| s.std_dev()).unwrap_or(0.0);
    let iqr = crate::summary::iqr(samples).unwrap_or(0.0) / 1.34;
    let spread = match (sd > 0.0, iqr > 0.0) {
        (true, true) => sd.min(iqr),
        (true, false) => sd,
        (false, true) => iqr,
        (false, false) => 0.0,
    };
    if spread <= 0.0 {
        bandwidth_floor(samples)
    } else {
        0.9 * spread * n.powf(-0.2)
    }
}

/// Scott's rule bandwidth: `1.06 * sd * n^(-1/5)`.
pub fn scott_bandwidth(samples: &[f64]) -> f64 {
    let n = samples.len() as f64;
    let sd = Summary::from_sample(samples).ok().and_then(|s| s.std_dev()).unwrap_or(0.0);
    if sd <= 0.0 {
        bandwidth_floor(samples)
    } else {
        1.06 * sd * n.powf(-0.2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_normal_like() -> Vec<f64> {
        // A deterministic, roughly bell-shaped sample centred on 100.
        vec![
            92.0, 95.0, 96.5, 98.0, 99.0, 99.5, 100.0, 100.2, 100.8, 101.5, 102.0, 103.0, 104.5, 106.0, 108.0,
        ]
    }

    #[test]
    fn fit_rejects_bad_input() {
        assert!(Kde::fit(&[]).is_err());
        assert!(Kde::fit(&[1.0, f64::NAN]).is_err());
        assert!(Kde::fit_with(&[1.0, 2.0], Bandwidth::Fixed(0.0)).is_err());
        assert!(Kde::fit_with(&[1.0, 2.0], Bandwidth::Fixed(-1.0)).is_err());
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let kde = Kde::fit(&sample_normal_like()).unwrap();
        let mut prev = 0.0;
        for i in 0..200 {
            let x = 80.0 + i as f64 * 0.25;
            let c = kde.cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c + 1e-12 >= prev, "cdf must be non-decreasing");
            prev = c;
        }
        assert!(kde.cdf(50.0) < 0.01);
        assert!(kde.cdf(150.0) > 0.99);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let kde = Kde::fit(&sample_normal_like()).unwrap();
        // Trapezoidal integration over a wide range.
        let (lo, hi, steps) = (60.0, 140.0, 4000);
        let dx = (hi - lo) / steps as f64;
        let mut area = 0.0;
        for i in 0..steps {
            let x0 = lo + i as f64 * dx;
            area += 0.5 * (kde.pdf(x0) + kde.pdf(x0 + dx)) * dx;
        }
        assert!((area - 1.0).abs() < 0.01, "area = {area}");
    }

    #[test]
    fn anomaly_score_flags_large_observations() {
        let kde = Kde::fit(&sample_normal_like()).unwrap();
        // A value far above the satisfactory range must be ≈ 1.
        assert!(kde.anomaly_score(160.0) > 0.95);
        // A typical value must be mid-range.
        let mid = kde.anomaly_score(100.0);
        assert!(mid > 0.3 && mid < 0.7, "mid = {mid}");
        // A value far below must be ≈ 0.
        assert!(kde.anomaly_score(40.0) < 0.05);
    }

    #[test]
    fn anomaly_score_mean_aggregates() {
        let kde = Kde::fit(&sample_normal_like()).unwrap();
        let score = kde.anomaly_score_mean(&[150.0, 155.0, 160.0]).unwrap();
        assert!(score > 0.95);
        assert!(kde.anomaly_score_mean(&[]).is_err());
    }

    #[test]
    fn two_sided_score_detects_drops() {
        let kde = Kde::fit(&sample_normal_like()).unwrap();
        assert!(kde.two_sided_score(40.0) > 0.9);
        assert!(kde.two_sided_score(160.0) > 0.9);
        assert!(kde.two_sided_score(100.0) < 0.4);
    }

    #[test]
    fn degenerate_sample_does_not_panic() {
        // All-equal sample: bandwidth floor keeps the CDF smooth enough to score.
        let kde = Kde::fit(&[5.0; 20]).unwrap();
        assert!(kde.bandwidth() > 0.0);
        assert!(kde.anomaly_score(5.0) > 0.4 && kde.anomaly_score(5.0) < 0.6);
        assert!(kde.anomaly_score(500.0) > 0.99);
        // All-zero sample (idle metric).
        let kde = Kde::fit(&[0.0; 10]).unwrap();
        assert!(kde.anomaly_score(1.0) > 0.99);
        assert!(kde.anomaly_score(0.0) < 0.6);
    }

    #[test]
    fn bandwidth_rules_are_positive_and_ordered() {
        let s = sample_normal_like();
        let h_silverman = silverman_bandwidth(&s);
        let h_scott = scott_bandwidth(&s);
        assert!(h_silverman > 0.0 && h_scott > 0.0);
        // Scott uses sd with a larger constant; Silverman uses min(sd, iqr/1.34) * 0.9.
        assert!(h_scott >= h_silverman);
    }

    #[test]
    fn fit_is_order_independent() {
        let a = Kde::fit(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        let b = Kde::fit(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(a.samples(), b.samples());
        assert_eq!(a.bandwidth().to_bits(), b.bandwidth().to_bits());
    }

    #[test]
    fn extended_matches_cold_fit_bit_for_bit() {
        let old = [3.0, 1.0, 2.0, 5.0, 4.0, 4.0];
        let delta = [2.5, 0.5, 9.0, 4.0];
        let kde = Kde::fit(&old).unwrap();
        let ext = kde.extended(&delta).unwrap();
        let mut concat = old.to_vec();
        concat.extend_from_slice(&delta);
        let cold = Kde::fit(&concat).unwrap();
        assert_eq!(ext.samples(), cold.samples());
        assert_eq!(ext.bandwidth().to_bits(), cold.bandwidth().to_bits());
        // Empty delta is the identity extension.
        let same = kde.extended(&[]).unwrap();
        assert_eq!(same.samples(), kde.samples());
        assert_eq!(same.bandwidth().to_bits(), kde.bandwidth().to_bits());
        // Non-finite deltas are rejected.
        assert!(kde.extended(&[f64::NAN]).is_err());
    }

    #[test]
    fn from_parts_round_trips_a_fit() {
        let kde = Kde::fit(&sample_normal_like()).unwrap();
        let rebuilt = Kde::from_parts(kde.samples().to_vec(), kde.bandwidth()).unwrap();
        assert_eq!(rebuilt.samples(), kde.samples());
        assert_eq!(rebuilt.bandwidth().to_bits(), kde.bandwidth().to_bits());
        assert_eq!(rebuilt.cdf(101.0).to_bits(), kde.cdf(101.0).to_bits());
        assert!(Kde::from_parts(vec![], 1.0).is_err());
        assert!(Kde::from_parts(vec![2.0, 1.0], 1.0).is_err(), "unsorted rejected");
        assert!(Kde::from_parts(vec![1.0, 2.0], 0.0).is_err());
        assert!(Kde::from_parts(vec![1.0, f64::INFINITY], 1.0).is_err());
    }

    #[test]
    fn fixed_bandwidth_is_respected() {
        let kde = Kde::fit_with(&sample_normal_like(), Bandwidth::Fixed(2.5)).unwrap();
        assert!((kde.bandwidth() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn more_samples_sharpen_the_estimate() {
        // With more satisfactory samples tightly clustered, a moderately high value
        // becomes more clearly anomalous.
        let tight: Vec<f64> = (0..50).map(|i| 100.0 + (i % 5) as f64 * 0.5).collect();
        let loose: Vec<f64> = (0..5).map(|i| 100.0 + i as f64 * 0.5).collect();
        let k_tight = Kde::fit(&tight).unwrap();
        let k_loose = Kde::fit(&loose).unwrap();
        assert!(k_tight.anomaly_score(106.0) >= k_loose.anomaly_score(106.0) - 1e-9);
    }
}
