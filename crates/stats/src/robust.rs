//! Robust statistics: median absolute deviation, trimmed means, outlier masks.
//!
//! The monitoring data DIADS consumes is noisy (coarse sampling intervals average away
//! bursts, and collection glitches inject spikes). The robust estimators here are used
//! by the noise-handling paths of the collector and by the MAD-based baseline detector.

use crate::summary::{median, quantile};
use crate::{ensure_finite, Result, StatsError};

/// Median absolute deviation (MAD) of a sample, scaled by 1.4826 so that it is a
/// consistent estimator of the standard deviation for normal data.
///
/// # Errors
/// Returns [`StatsError::EmptySample`] for an empty sample.
pub fn mad(sample: &[f64]) -> Result<f64> {
    let m = median(sample)?;
    let deviations: Vec<f64> = sample.iter().map(|v| (v - m).abs()).collect();
    Ok(1.4826 * median(&deviations)?)
}

/// Trimmed mean: drops the lowest and highest `trim_fraction` of observations
/// before averaging. `trim_fraction` must be in `[0, 0.5)`.
///
/// # Errors
/// Returns [`StatsError::InvalidParameter`] for an out-of-range fraction and
/// [`StatsError::EmptySample`] for an empty sample.
pub fn trimmed_mean(sample: &[f64], trim_fraction: f64) -> Result<f64> {
    if !(0.0..0.5).contains(&trim_fraction) {
        return Err(StatsError::InvalidParameter("trim fraction must be in [0, 0.5)"));
    }
    if sample.is_empty() {
        return Err(StatsError::EmptySample);
    }
    ensure_finite(sample)?;
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let k = (sorted.len() as f64 * trim_fraction).floor() as usize;
    let kept = &sorted[k..sorted.len() - k];
    if kept.is_empty() {
        return Err(StatsError::NotEnoughSamples { required: 2 * k + 1, got: sample.len() });
    }
    Ok(kept.iter().sum::<f64>() / kept.len() as f64)
}

/// Marks observations lying outside `median ± threshold * MAD` as outliers.
///
/// Returns a boolean mask aligned with the input: `true` means outlier. A degenerate
/// sample (MAD == 0) marks every value different from the median as an outlier.
///
/// # Errors
/// Returns [`StatsError::EmptySample`] for an empty sample.
pub fn mad_outlier_mask(sample: &[f64], threshold: f64) -> Result<Vec<bool>> {
    let m = median(sample)?;
    let spread = mad(sample)?;
    Ok(sample
        .iter()
        .map(
            |&v| {
                if spread > 0.0 {
                    (v - m).abs() > threshold * spread
                } else {
                    (v - m).abs() > f64::EPSILON
                }
            },
        )
        .collect())
}

/// Winsorises a sample: values below the `lower` quantile or above the `upper`
/// quantile are clamped to those quantiles. Useful for taming monitoring spikes
/// before fitting a KDE when noise is known to be heavy-tailed.
///
/// # Errors
/// Returns [`StatsError::InvalidParameter`] if `lower >= upper` or either is outside
/// `[0, 1]`, and propagates sample errors.
pub fn winsorise(sample: &[f64], lower: f64, upper: f64) -> Result<Vec<f64>> {
    if lower >= upper {
        return Err(StatsError::InvalidParameter("lower quantile must be below upper"));
    }
    let lo = quantile(sample, lower)?;
    let hi = quantile(sample, upper)?;
    Ok(sample.iter().map(|&v| v.clamp(lo, hi)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mad_of_symmetric_sample() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        // median = 3, abs deviations = [2,1,0,1,2], median = 1 -> 1.4826
        assert!((mad(&data).unwrap() - 1.4826).abs() < 1e-12);
        assert!(mad(&[]).is_err());
    }

    #[test]
    fn mad_resists_outliers() {
        let clean = [10.0, 11.0, 9.0, 10.5, 9.5, 10.2, 9.8];
        let mut dirty = clean.to_vec();
        dirty.push(1000.0);
        let m_clean = mad(&clean).unwrap();
        let m_dirty = mad(&dirty).unwrap();
        assert!((m_clean - m_dirty).abs() < 1.0, "MAD should barely move: {m_clean} vs {m_dirty}");
    }

    #[test]
    fn trimmed_mean_ignores_extremes() {
        let data = [1.0, 2.0, 3.0, 4.0, 100.0];
        let tm = trimmed_mean(&data, 0.2).unwrap();
        assert!((tm - 3.0).abs() < 1e-12);
        assert!(trimmed_mean(&data, 0.5).is_err());
        assert!(trimmed_mean(&data, -0.1).is_err());
        assert!(trimmed_mean(&[], 0.1).is_err());
        // Zero trim equals plain mean.
        assert!((trimmed_mean(&data, 0.0).unwrap() - 22.0).abs() < 1e-12);
    }

    #[test]
    fn outlier_mask_flags_spikes() {
        let data = [10.0, 10.2, 9.9, 10.1, 9.8, 30.0, 10.0];
        let mask = mad_outlier_mask(&data, 5.0).unwrap();
        assert_eq!(mask.iter().filter(|&&b| b).count(), 1);
        assert!(mask[5]);
    }

    #[test]
    fn outlier_mask_on_degenerate_sample() {
        let data = [5.0, 5.0, 5.0, 7.0];
        let mask = mad_outlier_mask(&data, 3.0).unwrap();
        assert_eq!(mask, vec![false, false, false, true]);
    }

    #[test]
    fn winsorise_clamps_tails() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 100.0];
        let w = winsorise(&data, 0.05, 0.9).unwrap();
        let max = w.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max < 100.0);
        assert!(winsorise(&data, 0.9, 0.1).is_err());
    }
}
