//! Correlation analysis between paired samples.
//!
//! Module DA ("Dependency Analysis") checks whether a component's performance metric
//! is *significantly correlated* with the running time of an operator in the
//! correlated-operator set; module CR does the same for record counts. DIADS uses the
//! KDE anomaly score as its primary signal but cross-checks with rank correlation so
//! that a metric that merely drifted (without tracking the operator) is not blamed.

use crate::{Result, StatsError};

fn validate_pair(x: &[f64], y: &[f64]) -> Result<()> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch { left: x.len(), right: y.len() });
    }
    if x.len() < 2 {
        return Err(StatsError::NotEnoughSamples { required: 2, got: x.len() });
    }
    crate::ensure_finite(x)?;
    crate::ensure_finite(y)?;
    Ok(())
}

/// Pearson product-moment correlation coefficient of two paired samples.
///
/// Returns 0 when either sample has zero variance (a constant signal carries no
/// correlation information for diagnosis purposes).
///
/// # Errors
/// Returns an error on length mismatch, fewer than two pairs, or non-finite values.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64> {
    validate_pair(x, y)?;
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mx;
        let dy = yi - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return Ok(0.0);
    }
    Ok((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

/// Mid-rank assignment (ties get the average of the ranks they span).
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite"));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // Ranks are 1-based; ties share the mean rank of the tied block.
        let mean_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = mean_rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation coefficient of two paired samples.
///
/// # Errors
/// Same error conditions as [`pearson`].
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64> {
    validate_pair(x, y)?;
    pearson(&ranks(x), &ranks(y))
}

/// Sample covariance (n-1 denominator) of two paired samples.
///
/// # Errors
/// Same error conditions as [`pearson`].
pub fn covariance(x: &[f64], y: &[f64]) -> Result<f64> {
    validate_pair(x, y)?;
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let s: f64 = x.iter().zip(y).map(|(&xi, &yi)| (xi - mx) * (yi - my)).sum();
    Ok(s / (n - 1.0))
}

/// A qualitative strength bucket for a correlation coefficient, used when rendering
/// dependency-analysis results for the administrator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrelationStrength {
    /// |r| ≥ 0.7
    Strong,
    /// 0.4 ≤ |r| < 0.7
    Moderate,
    /// 0.2 ≤ |r| < 0.4
    Weak,
    /// |r| < 0.2
    Negligible,
}

impl CorrelationStrength {
    /// Buckets a correlation coefficient.
    pub fn from_coefficient(r: f64) -> Self {
        let a = r.abs();
        if a >= 0.7 {
            CorrelationStrength::Strong
        } else if a >= 0.4 {
            CorrelationStrength::Moderate
        } else if a >= 0.2 {
            CorrelationStrength::Weak
        } else {
            CorrelationStrength::Negligible
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_linear() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 4.0, 6.0, 8.0, 10.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let y_neg = [10.0, 8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &y_neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_signal_is_zero() {
        let x = [1.0, 2.0, 3.0];
        let y = [5.0, 5.0, 5.0];
        assert_eq!(pearson(&x, &y).unwrap(), 0.0);
    }

    #[test]
    fn pearson_uncorrelated_is_small() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let y = [3.0, -3.0, 3.0, -3.0, 3.0, -3.0, 3.0, -3.0];
        assert!(pearson(&x, &y).unwrap().abs() < 0.3);
    }

    #[test]
    fn validation_errors() {
        assert!(pearson(&[1.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, f64::NAN], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect();
        // Monotone but highly nonlinear: Spearman is exactly 1, Pearson is less.
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [10.0, 20.0, 20.0, 30.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_are_mid_ranks() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 5.0]), vec![2.0, 3.5, 3.5, 1.0]);
    }

    #[test]
    fn covariance_matches_manual() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 4.0, 6.0];
        assert!((covariance(&x, &y).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn strength_buckets() {
        assert_eq!(CorrelationStrength::from_coefficient(0.9), CorrelationStrength::Strong);
        assert_eq!(CorrelationStrength::from_coefficient(-0.75), CorrelationStrength::Strong);
        assert_eq!(CorrelationStrength::from_coefficient(0.5), CorrelationStrength::Moderate);
        assert_eq!(CorrelationStrength::from_coefficient(0.25), CorrelationStrength::Weak);
        assert_eq!(CorrelationStrength::from_coefficient(0.05), CorrelationStrength::Negligible);
    }
}
