//! Memoisation of KDE fits across the diagnosis workflow.
//!
//! The workflow scores the *same* satisfactory history many times across
//! re-executions: the interactive mode re-runs modules at will, benchmarks and
//! repeated diagnoses revisit one context, and parallel DA workers hand their fits
//! back for later passes. Re-fitting on each of those is pure waste — the
//! satisfactory sample for a given variable never changes while the context lives.
//! [`ScoringCache`] fits each variable once and hands out the shared estimate.

use std::collections::HashMap;
use std::hash::Hash;

use crate::kde::Kde;

/// A cache of fitted KDEs keyed by the caller's variable identity.
///
/// The key is typically a small `Copy` type (an operator id, or an interned
/// (component, metric) symbol pair), so lookups never allocate. A variable whose
/// sample could not be fitted (empty, non-finite, or below the caller's minimum
/// sample size) is cached as `None` so the failed fit is not retried either.
#[derive(Debug, Clone)]
pub struct ScoringCache<K> {
    entries: HashMap<K, Option<Kde>>,
    enabled: bool,
    /// Holds the most recent fit of a disabled cache (so `fit_or_insert_with` can
    /// return a borrow without touching the map).
    scratch: Option<Kde>,
    hits: u64,
    misses: u64,
}

impl<K> Default for ScoringCache<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> ScoringCache<K> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ScoringCache { entries: HashMap::new(), enabled: true, scratch: None, hits: 0, misses: 0 }
    }

    /// Creates a cache that never caches: every lookup re-fits, and only the most
    /// recent estimate is kept alive (in a scratch slot, never in the map).
    ///
    /// This exists purely as the A/B baseline for benchmarks ("what did per-call
    /// refitting cost?"); production callers always want [`ScoringCache::new`].
    pub fn disabled() -> Self {
        ScoringCache { entries: HashMap::new(), enabled: false, scratch: None, hits: 0, misses: 0 }
    }

    /// Number of cached variables (fitted or negatively cached).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups that were served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to fit.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Whether this cache retains fits ([`ScoringCache::disabled`] caches do not).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Drops every cached fit (e.g. when the run history being diagnosed changes).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.scratch = None;
    }
}

impl<K: Eq + Hash> ScoringCache<K> {
    /// Absorbs another cache's entries (existing entries win). Used to merge the
    /// thread-local caches of a parallel scoring pass back into the shared cache.
    ///
    /// A disabled receiver absorbs only the counters — its "never caches" contract
    /// holds even when fed from enabled worker caches.
    pub fn absorb(&mut self, other: ScoringCache<K>) {
        self.hits += other.hits;
        self.misses += other.misses;
        if !self.enabled {
            return;
        }
        for (key, entry) in other.entries {
            self.entries.entry(key).or_insert(entry);
        }
    }
}

impl<K: Eq + Hash> ScoringCache<K> {
    /// The KDE for `key`, fitting it from `samples()` on first use.
    ///
    /// `samples` is only invoked on a cache miss. It returns the satisfactory sample
    /// to fit, or `None` when the variable should not be scored at all (the caller's
    /// minimum-sample policy); both outcomes are cached.
    pub fn fit_or_insert_with(&mut self, key: K, samples: impl FnOnce() -> Option<Vec<f64>>) -> Option<&Kde> {
        if !self.enabled {
            self.misses += 1;
            self.scratch = samples().and_then(|s| Kde::fit(&s).ok());
            return self.scratch.as_ref();
        }
        let mut missed = false;
        let entry = self.entries.entry(key).or_insert_with(|| {
            missed = true;
            samples().and_then(|s| Kde::fit(&s).ok())
        });
        if missed {
            self.misses += 1;
        } else {
            self.hits += 1;
        }
        entry.as_ref()
    }

    /// The cached KDE for `key`, if a successful fit is already cached.
    pub fn get(&self, key: &K) -> Option<&Kde> {
        self.entries.get(key).and_then(|e| e.as_ref())
    }

    /// The full cache state for `key`: `None` if the key was never attempted,
    /// `Some(None)` if it is negatively cached (not scoreable), `Some(Some(_))` if a
    /// fit is cached. Lets a read-only warm layer distinguish "unknown" from "known
    /// unscoreable" instead of re-deriving the negative result.
    pub fn probe(&self, key: &K) -> Option<Option<&Kde>> {
        self.entries.get(key).map(|e| e.as_ref())
    }

    /// Every cached entry — fitted (`Some`) or negative (`None`) — in arbitrary
    /// (hash-map) order. The enumeration seam for snapshotting a cache and for
    /// planning an incremental extension pass.
    pub fn entries(&self) -> impl Iterator<Item = (&K, Option<&Kde>)> {
        self.entries.iter().map(|(k, e)| (k, e.as_ref()))
    }

    /// Inserts (or replaces) an entry directly — the restore counterpart of
    /// [`Self::entries`]. No-op on a disabled cache (its "never caches" contract
    /// holds even when fed deserialised fits).
    pub fn insert_fit(&mut self, key: K, fit: Option<Kde>) {
        if self.enabled {
            self.entries.insert(key, fit);
        }
    }

    /// Removes the entry for `key`, returning whether one existed. Used to evict
    /// negative entries whose variable may have become scoreable after new data
    /// arrived — the next lookup re-derives them from the full sample.
    pub fn remove(&mut self, key: &K) -> bool {
        self.entries.remove(key).is_some()
    }

    /// Grows the fitted sample of `key` by merge-inserting `delta` — the sorted
    /// sample vector behind the fit is extended in O(new log new + merge) and the
    /// bandwidth re-derived exactly, bit-identical to a cold refit over the
    /// concatenated sample (see [`Kde::extended`]).
    ///
    /// Returns `false`, leaving the entry untouched, when the key has no positive
    /// fit or the delta fails validation: negative entries must be re-derived by
    /// the caller, which alone knows the full sample.
    pub fn extend_fit(&mut self, key: &K, delta: &[f64]) -> bool {
        let Some(Some(kde)) = self.entries.get_mut(key) else { return false };
        if delta.is_empty() {
            return true;
        }
        match kde.extended(delta) {
            Ok(next) => {
                *kde = next;
                true
            }
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<f64> {
        (0..20).map(|i| 100.0 + (i % 5) as f64).collect()
    }

    #[test]
    fn fits_once_and_reuses() {
        let mut cache: ScoringCache<u32> = ScoringCache::new();
        let mut fits = 0;
        for _ in 0..5 {
            let kde = cache
                .fit_or_insert_with(7, || {
                    fits += 1;
                    Some(sample())
                })
                .expect("fit succeeds");
            assert!(kde.anomaly_score(200.0) > 0.99);
        }
        assert_eq!(fits, 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 4);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn negative_results_are_cached_too() {
        let mut cache: ScoringCache<u32> = ScoringCache::new();
        let mut calls = 0;
        for _ in 0..3 {
            let kde = cache.fit_or_insert_with(1, || {
                calls += 1;
                None
            });
            assert!(kde.is_none());
        }
        assert_eq!(calls, 1);
        assert!(cache.get(&1).is_none());
        // An unfittable sample is also negatively cached.
        assert!(cache.fit_or_insert_with(2, || Some(vec![])).is_none());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn disabled_cache_refits_every_time() {
        let mut cache: ScoringCache<u32> = ScoringCache::disabled();
        let mut fits = 0;
        for _ in 0..3 {
            cache.fit_or_insert_with(7, || {
                fits += 1;
                Some(sample())
            });
        }
        assert_eq!(fits, 3);
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 0);
        // Nothing is retained in the map — only the scratch slot holds the last fit.
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn absorb_merges_and_keeps_existing_entries() {
        let mut a: ScoringCache<u32> = ScoringCache::new();
        a.fit_or_insert_with(1, || Some(sample()));
        let mut b: ScoringCache<u32> = ScoringCache::new();
        b.fit_or_insert_with(1, || Some(vec![0.0; 5]));
        b.fit_or_insert_with(2, || Some(sample()));
        let a_kde_len = a.get(&1).unwrap().len();
        a.absorb(b);
        assert_eq!(a.len(), 2);
        // The pre-existing fit for key 1 was kept.
        assert_eq!(a.get(&1).unwrap().len(), a_kde_len);
        assert!(a.get(&2).is_some());
        assert_eq!(a.misses(), 3);
    }

    #[test]
    fn extend_fit_matches_a_cold_refit() {
        let old: Vec<f64> = sample();
        let delta = [97.0, 103.5, 101.0];
        let mut cache: ScoringCache<u32> = ScoringCache::new();
        cache.fit_or_insert_with(1, || Some(old.clone()));
        cache.fit_or_insert_with(2, || None);
        assert!(cache.extend_fit(&1, &delta));
        assert!(!cache.extend_fit(&2, &delta), "negative entries are not extendable");
        assert!(!cache.extend_fit(&3, &delta), "unknown keys are not extendable");
        assert!(!cache.extend_fit(&1, &[f64::NAN]), "bad deltas leave the fit untouched");

        let mut concat = old;
        concat.extend_from_slice(&delta);
        let cold = Kde::fit(&concat).unwrap();
        let grown = cache.get(&1).unwrap();
        assert_eq!(grown.samples(), cold.samples());
        assert_eq!(grown.bandwidth().to_bits(), cold.bandwidth().to_bits());
    }

    #[test]
    fn entries_insert_and_remove_round_trip() {
        let mut cache: ScoringCache<u32> = ScoringCache::new();
        cache.fit_or_insert_with(1, || Some(sample()));
        cache.fit_or_insert_with(2, || None);
        let mut keys: Vec<(u32, bool)> = cache.entries().map(|(k, e)| (*k, e.is_some())).collect();
        keys.sort();
        assert_eq!(keys, vec![(1, true), (2, false)]);

        // Round trip through from_parts, as snapshot/restore does.
        let kde = cache.get(&1).unwrap();
        let rebuilt = Kde::from_parts(kde.samples().to_vec(), kde.bandwidth()).unwrap();
        let mut restored: ScoringCache<u32> = ScoringCache::new();
        restored.insert_fit(1, Some(rebuilt));
        restored.insert_fit(2, None);
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.get(&1).unwrap().samples(), cache.get(&1).unwrap().samples());
        assert!(matches!(restored.probe(&2), Some(None)), "negative entry restored");

        assert!(restored.remove(&2));
        assert!(!restored.remove(&2));
        assert_eq!(restored.len(), 1);

        // Disabled caches refuse direct inserts.
        let mut disabled: ScoringCache<u32> = ScoringCache::disabled();
        disabled.insert_fit(1, None);
        assert_eq!(disabled.len(), 0);
    }

    #[test]
    fn clear_forgets_fits() {
        let mut cache: ScoringCache<u32> = ScoringCache::new();
        cache.fit_or_insert_with(1, || Some(sample()));
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.get(&1).is_none());
    }
}
