//! Anomaly detectors: a common interface over KDE scoring and the baseline detectors
//! used for the paper's "KDE vs. advanced/simple models" observation.
//!
//! Every detector is *fit on satisfactory observations only* and then asked to score an
//! observation from an unsatisfactory run; the score is calibrated to `[0, 1]` where
//! values near 1 mean "significantly higher than the satisfactory range". This mirrors
//! the semantics of the paper's `prob(S <= u)` anomaly score so the detectors are
//! interchangeable inside the workflow (which is exactly what the ablation benchmarks
//! exercise).

use crate::dist::std_normal_cdf;
use crate::kde::{Bandwidth, Kde};
use crate::robust::mad;
use crate::summary::{median, quantile, Summary};
use crate::Result;
use crate::StatsError;

/// A detector that learns the satisfactory behaviour of a scalar signal and scores how
/// anomalous (how much *higher* than normal) a later observation is.
pub trait AnomalyDetector {
    /// Fits the detector to observations gathered during satisfactory runs.
    ///
    /// # Errors
    /// Implementations reject empty or non-finite samples.
    fn fit(&mut self, satisfactory: &[f64]) -> Result<()>;

    /// Scores one observation; 0 = typical or below range, 1 = far above range.
    fn score(&self, observation: f64) -> f64;

    /// Human-readable detector name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Convenience: whether the observation exceeds the given anomaly threshold.
    fn is_anomalous(&self, observation: f64, threshold: f64) -> bool {
        self.score(observation) >= threshold
    }
}

/// The paper's detector: Gaussian KDE over satisfactory observations, score = CDF.
#[derive(Debug, Clone, Default)]
pub struct KdeDetector {
    bandwidth: Option<Bandwidth>,
    kde: Option<Kde>,
}

impl KdeDetector {
    /// Creates an unfitted detector with the default (Silverman) bandwidth.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an unfitted detector with an explicit bandwidth strategy.
    pub fn with_bandwidth(bandwidth: Bandwidth) -> Self {
        KdeDetector { bandwidth: Some(bandwidth), kde: None }
    }

    /// Access to the fitted KDE, if any.
    pub fn kde(&self) -> Option<&Kde> {
        self.kde.as_ref()
    }
}

impl AnomalyDetector for KdeDetector {
    fn fit(&mut self, satisfactory: &[f64]) -> Result<()> {
        let kde = match self.bandwidth {
            Some(bw) => Kde::fit_with(satisfactory, bw)?,
            None => Kde::fit(satisfactory)?,
        };
        self.kde = Some(kde);
        Ok(())
    }

    fn score(&self, observation: f64) -> f64 {
        match &self.kde {
            Some(kde) => kde.anomaly_score(observation),
            None => 0.0,
        }
    }

    fn name(&self) -> &'static str {
        "kde"
    }
}

/// Parametric Gaussian (z-score) detector: assumes satisfactory observations are
/// normal and scores with the normal CDF. Sensitive to non-normality and to outliers
/// in the training data — one of the baselines DIADS improves upon.
#[derive(Debug, Clone, Default)]
pub struct ZScoreDetector {
    mean: f64,
    std_dev: f64,
    fitted: bool,
}

impl ZScoreDetector {
    /// Creates an unfitted detector.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AnomalyDetector for ZScoreDetector {
    fn fit(&mut self, satisfactory: &[f64]) -> Result<()> {
        if satisfactory.is_empty() {
            return Err(StatsError::EmptySample);
        }
        let s = Summary::from_sample(satisfactory)?;
        self.mean = s.mean().expect("non-empty");
        self.std_dev = s.std_dev().unwrap_or(0.0).max(self.mean.abs() * 1e-3).max(1e-9);
        self.fitted = true;
        Ok(())
    }

    fn score(&self, observation: f64) -> f64 {
        if !self.fitted {
            return 0.0;
        }
        std_normal_cdf((observation - self.mean) / self.std_dev)
    }

    fn name(&self) -> &'static str {
        "zscore"
    }
}

/// Robust MAD-based detector: like the z-score detector but centred on the median and
/// scaled by the median absolute deviation, so training-set outliers barely move it.
#[derive(Debug, Clone, Default)]
pub struct MadDetector {
    median: f64,
    mad: f64,
    fitted: bool,
}

impl MadDetector {
    /// Creates an unfitted detector.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AnomalyDetector for MadDetector {
    fn fit(&mut self, satisfactory: &[f64]) -> Result<()> {
        self.median = median(satisfactory)?;
        self.mad = mad(satisfactory)?.max(self.median.abs() * 1e-3).max(1e-9);
        self.fitted = true;
        Ok(())
    }

    fn score(&self, observation: f64) -> f64 {
        if !self.fitted {
            return 0.0;
        }
        std_normal_cdf((observation - self.median) / self.mad)
    }

    fn name(&self) -> &'static str {
        "mad"
    }
}

/// Naïve rule-of-thumb detector: anything above the `percentile`-th percentile of the
/// satisfactory sample scores 1, everything else scores 0. This models the fixed
/// thresholds an administrator might configure by hand; it has no notion of "how far
/// above" and is brittle with few samples.
#[derive(Debug, Clone)]
pub struct PercentileDetector {
    percentile: f64,
    cutoff: f64,
    fitted: bool,
}

impl PercentileDetector {
    /// Creates an unfitted detector with a cut at the given percentile (in `[0, 1]`).
    pub fn new(percentile: f64) -> Self {
        PercentileDetector { percentile, cutoff: f64::INFINITY, fitted: false }
    }

    /// The learned cutoff value (infinite before fitting).
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }
}

impl Default for PercentileDetector {
    fn default() -> Self {
        Self::new(0.95)
    }
}

impl AnomalyDetector for PercentileDetector {
    fn fit(&mut self, satisfactory: &[f64]) -> Result<()> {
        if !(0.0..=1.0).contains(&self.percentile) {
            return Err(StatsError::InvalidParameter("percentile must be in [0, 1]"));
        }
        self.cutoff = quantile(satisfactory, self.percentile)?;
        self.fitted = true;
        Ok(())
    }

    fn score(&self, observation: f64) -> f64 {
        if !self.fitted {
            return 0.0;
        }
        if observation > self.cutoff {
            1.0
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "percentile"
    }
}

/// Scores a batch of observations with any detector, returning `(observation, score)`.
pub fn score_batch<D: AnomalyDetector + ?Sized>(detector: &D, observations: &[f64]) -> Vec<(f64, f64)> {
    observations.iter().map(|&o| (o, detector.score(o))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn satisfactory() -> Vec<f64> {
        vec![10.0, 10.5, 9.8, 10.2, 9.9, 10.1, 10.4, 9.7, 10.3, 10.0, 9.6, 10.6, 10.05, 9.95, 10.15]
    }

    #[test]
    fn kde_detector_scores_extremes() {
        let mut d = KdeDetector::new();
        d.fit(&satisfactory()).unwrap();
        assert!(d.score(25.0) > 0.95);
        assert!(d.score(10.0) < 0.7);
        assert!(d.is_anomalous(25.0, 0.8));
        assert!(!d.is_anomalous(10.0, 0.8));
        assert_eq!(d.name(), "kde");
        assert!(d.kde().is_some());
    }

    #[test]
    fn unfitted_detectors_score_zero() {
        assert_eq!(KdeDetector::new().score(100.0), 0.0);
        assert_eq!(ZScoreDetector::new().score(100.0), 0.0);
        assert_eq!(MadDetector::new().score(100.0), 0.0);
        assert_eq!(PercentileDetector::default().score(100.0), 0.0);
    }

    #[test]
    fn zscore_detector_basic() {
        let mut d = ZScoreDetector::new();
        d.fit(&satisfactory()).unwrap();
        assert!(d.score(11.5) > 0.9);
        assert!(d.score(10.0) > 0.3 && d.score(10.0) < 0.7);
        assert!(d.fit(&[]).is_err());
    }

    #[test]
    fn zscore_is_distorted_by_training_outliers_but_mad_is_not() {
        // The "noisy data" case: a single large spike contaminates the satisfactory data.
        let mut contaminated = satisfactory();
        contaminated.push(100.0);
        let mut z = ZScoreDetector::new();
        z.fit(&contaminated).unwrap();
        let mut m = MadDetector::new();
        m.fit(&contaminated).unwrap();
        // A genuinely anomalous value (16.0, well above the ~10 baseline):
        let z_score = z.score(16.0);
        let m_score = m.score(16.0);
        assert!(m_score > 0.99, "MAD should still flag it: {m_score}");
        assert!(z_score < m_score, "z-score is diluted by the contaminating spike");
    }

    #[test]
    fn percentile_detector_is_binary() {
        let mut d = PercentileDetector::new(0.9);
        d.fit(&satisfactory()).unwrap();
        assert_eq!(d.score(100.0), 1.0);
        assert_eq!(d.score(9.0), 0.0);
        assert!(d.cutoff().is_finite());
        let mut bad = PercentileDetector::new(1.5);
        assert!(bad.fit(&satisfactory()).is_err());
    }

    #[test]
    fn score_batch_pairs_observations() {
        let mut d = KdeDetector::new();
        d.fit(&satisfactory()).unwrap();
        let scored = score_batch(&d, &[9.0, 30.0]);
        assert_eq!(scored.len(), 2);
        assert_eq!(scored[0].0, 9.0);
        assert!(scored[1].1 > scored[0].1);
    }

    #[test]
    fn detectors_agree_on_obvious_cases() {
        let train = satisfactory();
        let mut kde = KdeDetector::new();
        let mut z = ZScoreDetector::new();
        let mut m = MadDetector::new();
        let mut p = PercentileDetector::default();
        kde.fit(&train).unwrap();
        z.fit(&train).unwrap();
        m.fit(&train).unwrap();
        p.fit(&train).unwrap();
        for d in [&kde as &dyn AnomalyDetector, &z, &m, &p] {
            assert!(d.score(50.0) >= 0.95, "{} failed on obvious anomaly", d.name());
            assert!(d.score(5.0) <= 0.2, "{} failed on obvious non-anomaly", d.name());
        }
    }
}
