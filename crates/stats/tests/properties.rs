//! Property-based tests for the statistics layer invariants the diagnosis workflow
//! relies on: anomaly scores are probabilities, CDFs are monotone, correlations are
//! bounded and symmetric, histograms conserve mass.

use diads_stats::histogram::{EquiDepthHistogram, EquiWidthHistogram};
use diads_stats::kde::Kde;
use diads_stats::summary::{median, quantile, Summary};
use diads_stats::{pearson, spearman, AnomalyDetector, KdeDetector, MadDetector, ZScoreDetector};
use proptest::prelude::*;

fn finite_sample(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6..1.0e6_f64, min_len..60)
}

fn positive_sample(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0..1.0e6_f64, min_len..60)
}

proptest! {
    #[test]
    fn kde_anomaly_score_is_a_probability(sample in finite_sample(1), u in -2.0e6..2.0e6_f64) {
        let kde = Kde::fit(&sample).unwrap();
        let score = kde.anomaly_score(u);
        prop_assert!((0.0..=1.0).contains(&score));
    }

    #[test]
    fn kde_cdf_is_monotone(sample in finite_sample(2), a in -2.0e6..2.0e6_f64, b in -2.0e6..2.0e6_f64) {
        let kde = Kde::fit(&sample).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(kde.cdf(lo) <= kde.cdf(hi) + 1e-9);
    }

    #[test]
    fn kde_extremes_score_extreme(sample in finite_sample(3)) {
        let kde = Kde::fit(&sample).unwrap();
        let max = sample.iter().cloned().fold(f64::MIN, f64::max);
        let min = sample.iter().cloned().fold(f64::MAX, f64::min);
        let spread = (max - min).max(max.abs()).max(1.0);
        prop_assert!(kde.anomaly_score(max + 10.0 * spread) > 0.9);
        prop_assert!(kde.anomaly_score(min - 10.0 * spread) < 0.1);
    }

    #[test]
    fn detectors_are_monotone_in_the_observation(sample in positive_sample(3), x in 0.0..1.0e6_f64, delta in 0.0..1.0e6_f64) {
        let mut kde = KdeDetector::new();
        let mut z = ZScoreDetector::new();
        let mut m = MadDetector::new();
        kde.fit(&sample).unwrap();
        z.fit(&sample).unwrap();
        m.fit(&sample).unwrap();
        for d in [&kde as &dyn AnomalyDetector, &z, &m] {
            prop_assert!(d.score(x) <= d.score(x + delta) + 1e-9, "{} not monotone", d.name());
        }
    }

    #[test]
    fn pearson_is_bounded_and_symmetric(
        pairs in prop::collection::vec((-1.0e4..1.0e4_f64, -1.0e4..1.0e4_f64), 2..40)
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let rxy = pearson(&x, &y).unwrap();
        let ryx = pearson(&y, &x).unwrap();
        prop_assert!((-1.0..=1.0).contains(&rxy));
        prop_assert!((rxy - ryx).abs() < 1e-9);
    }

    #[test]
    fn pearson_is_scale_invariant(
        pairs in prop::collection::vec((-1.0e3..1.0e3_f64, -1.0e3..1.0e3_f64), 3..30),
        scale in 0.1..100.0_f64,
        shift in -100.0..100.0_f64,
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let y2: Vec<f64> = y.iter().map(|v| v * scale + shift).collect();
        let r1 = pearson(&x, &y).unwrap();
        let r2 = pearson(&x, &y2).unwrap();
        // Positive scaling preserves the coefficient (up to numerical error), unless
        // variance collapsed to the zero-variance special case.
        if r1.abs() > 1e-6 && r2 != 0.0 {
            prop_assert!((r1 - r2).abs() < 1e-6, "{r1} vs {r2}");
        }
    }

    #[test]
    fn spearman_is_bounded(
        pairs in prop::collection::vec((-1.0e4..1.0e4_f64, -1.0e4..1.0e4_f64), 2..40)
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let r = spearman(&x, &y).unwrap();
        prop_assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn summary_mean_is_within_min_max(sample in finite_sample(1)) {
        let s = Summary::from_sample(&sample).unwrap();
        let mean = s.mean().unwrap();
        prop_assert!(mean >= s.min().unwrap() - 1e-9);
        prop_assert!(mean <= s.max().unwrap() + 1e-9);
        if let Some(var) = s.variance() {
            prop_assert!(var >= -1e-9);
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q(sample in finite_sample(1), q1 in 0.0..1.0_f64, q2 in 0.0..1.0_f64) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&sample, lo).unwrap() <= quantile(&sample, hi).unwrap() + 1e-9);
    }

    #[test]
    fn median_is_between_min_and_max(sample in finite_sample(1)) {
        let m = median(&sample).unwrap();
        let min = sample.iter().cloned().fold(f64::MAX, f64::min);
        let max = sample.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(m >= min - 1e-9 && m <= max + 1e-9);
    }

    #[test]
    fn equi_width_histogram_conserves_mass(sample in prop::collection::vec(-50.0..150.0_f64, 1..200)) {
        let mut h = EquiWidthHistogram::new(0.0, 100.0, 10).unwrap();
        for &v in &sample {
            h.add(v);
        }
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), sample.len() as u64);
        prop_assert_eq!(h.total(), sample.len() as u64);
    }

    #[test]
    fn equi_depth_selectivity_is_monotone(sample in finite_sample(2), a in -1.0e6..1.0e6_f64, b in -1.0e6..1.0e6_f64) {
        let h = EquiDepthHistogram::build(&sample, 8).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(h.selectivity_le(lo) <= h.selectivity_le(hi) + 1e-9);
        let sel = h.selectivity_range(lo, hi);
        prop_assert!((0.0..=1.0).contains(&sel));
    }
}
