//! Property-based tests for the statistics layer invariants the diagnosis workflow
//! relies on: anomaly scores are probabilities, CDFs are monotone, correlations are
//! bounded and symmetric, histograms conserve mass.
//!
//! `proptest` is not vendored in this environment, so the properties are driven by a
//! deterministic splitmix64 case generator: every property is checked over a few
//! hundred pseudo-random cases with a fixed seed, which keeps failures reproducible.

use diads_monitor::rng::SplitMix64;
use diads_stats::histogram::{EquiDepthHistogram, EquiWidthHistogram};
use diads_stats::kde::Kde;
use diads_stats::summary::{median, quantile, Summary};
use diads_stats::{pearson, spearman, AnomalyDetector, KdeDetector, MadDetector, ZScoreDetector};

/// Deterministic case generator over the workspace's shared splitmix64 PRNG.
struct Gen {
    rng: SplitMix64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen { rng: SplitMix64::new(seed) }
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.rng.next_f64() * (hi - lo)
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.rng.next_u64() as usize) % (hi - lo)
    }

    fn sample(&mut self, min_len: usize, max_len: usize, lo: f64, hi: f64) -> Vec<f64> {
        let n = self.usize_in(min_len, max_len);
        (0..n).map(|_| self.f64_in(lo, hi)).collect()
    }
}

const CASES: usize = 200;

fn finite_sample(g: &mut Gen, min_len: usize) -> Vec<f64> {
    g.sample(min_len, 60, -1.0e6, 1.0e6)
}

fn positive_sample(g: &mut Gen, min_len: usize) -> Vec<f64> {
    g.sample(min_len, 60, 0.0, 1.0e6)
}

#[test]
fn kde_anomaly_score_is_a_probability() {
    let mut g = Gen::new(1);
    for _ in 0..CASES {
        let sample = finite_sample(&mut g, 1);
        let u = g.f64_in(-2.0e6, 2.0e6);
        let kde = Kde::fit(&sample).unwrap();
        let score = kde.anomaly_score(u);
        assert!((0.0..=1.0).contains(&score), "score = {score}");
    }
}

#[test]
fn kde_cdf_is_monotone() {
    let mut g = Gen::new(2);
    for _ in 0..CASES {
        let sample = finite_sample(&mut g, 2);
        let a = g.f64_in(-2.0e6, 2.0e6);
        let b = g.f64_in(-2.0e6, 2.0e6);
        let kde = Kde::fit(&sample).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(kde.cdf(lo) <= kde.cdf(hi) + 1e-9);
    }
}

#[test]
fn kde_extremes_score_extreme() {
    let mut g = Gen::new(3);
    for _ in 0..CASES {
        let sample = finite_sample(&mut g, 3);
        let kde = Kde::fit(&sample).unwrap();
        let max = sample.iter().cloned().fold(f64::MIN, f64::max);
        let min = sample.iter().cloned().fold(f64::MAX, f64::min);
        let spread = (max - min).max(max.abs()).max(1.0);
        assert!(kde.anomaly_score(max + 10.0 * spread) > 0.9);
        assert!(kde.anomaly_score(min - 10.0 * spread) < 0.1);
    }
}

#[test]
fn kde_score_many_matches_per_call_scores() {
    let mut g = Gen::new(17);
    for _ in 0..CASES {
        let sample = finite_sample(&mut g, 1);
        let xs: Vec<f64> = (0..8).map(|_| g.f64_in(-2.0e6, 2.0e6)).collect();
        let kde = Kde::fit(&sample).unwrap();
        let batch = kde.score_many(&xs);
        for (x, s) in xs.iter().zip(&batch) {
            assert!((kde.anomaly_score(*x) - s).abs() < 1e-12);
        }
    }
}

#[test]
fn detectors_are_monotone_in_the_observation() {
    let mut g = Gen::new(4);
    for _ in 0..CASES {
        let sample = positive_sample(&mut g, 3);
        let x = g.f64_in(0.0, 1.0e6);
        let delta = g.f64_in(0.0, 1.0e6);
        let mut kde = KdeDetector::new();
        let mut z = ZScoreDetector::new();
        let mut m = MadDetector::new();
        kde.fit(&sample).unwrap();
        z.fit(&sample).unwrap();
        m.fit(&sample).unwrap();
        for d in [&kde as &dyn AnomalyDetector, &z, &m] {
            assert!(d.score(x) <= d.score(x + delta) + 1e-9, "{} not monotone", d.name());
        }
    }
}

#[test]
fn pearson_is_bounded_and_symmetric() {
    let mut g = Gen::new(5);
    for _ in 0..CASES {
        let n = g.usize_in(2, 40);
        let x: Vec<f64> = (0..n).map(|_| g.f64_in(-1.0e4, 1.0e4)).collect();
        let y: Vec<f64> = (0..n).map(|_| g.f64_in(-1.0e4, 1.0e4)).collect();
        let rxy = pearson(&x, &y).unwrap();
        let ryx = pearson(&y, &x).unwrap();
        assert!((-1.0..=1.0).contains(&rxy));
        assert!((rxy - ryx).abs() < 1e-9);
    }
}

#[test]
fn pearson_is_scale_invariant() {
    let mut g = Gen::new(6);
    for _ in 0..CASES {
        let n = g.usize_in(3, 30);
        let x: Vec<f64> = (0..n).map(|_| g.f64_in(-1.0e3, 1.0e3)).collect();
        let y: Vec<f64> = (0..n).map(|_| g.f64_in(-1.0e3, 1.0e3)).collect();
        let scale = g.f64_in(0.1, 100.0);
        let shift = g.f64_in(-100.0, 100.0);
        let y2: Vec<f64> = y.iter().map(|v| v * scale + shift).collect();
        let r1 = pearson(&x, &y).unwrap();
        let r2 = pearson(&x, &y2).unwrap();
        // Positive scaling preserves the coefficient (up to numerical error), unless
        // variance collapsed to the zero-variance special case.
        if r1.abs() > 1e-6 && r2 != 0.0 {
            assert!((r1 - r2).abs() < 1e-6, "{r1} vs {r2}");
        }
    }
}

#[test]
fn spearman_is_bounded() {
    let mut g = Gen::new(7);
    for _ in 0..CASES {
        let n = g.usize_in(2, 40);
        let x: Vec<f64> = (0..n).map(|_| g.f64_in(-1.0e4, 1.0e4)).collect();
        let y: Vec<f64> = (0..n).map(|_| g.f64_in(-1.0e4, 1.0e4)).collect();
        let r = spearman(&x, &y).unwrap();
        assert!((-1.0..=1.0).contains(&r));
    }
}

#[test]
fn summary_mean_is_within_min_max() {
    let mut g = Gen::new(8);
    for _ in 0..CASES {
        let sample = finite_sample(&mut g, 1);
        let s = Summary::from_sample(&sample).unwrap();
        let mean = s.mean().unwrap();
        assert!(mean >= s.min().unwrap() - 1e-9);
        assert!(mean <= s.max().unwrap() + 1e-9);
        if let Some(var) = s.variance() {
            assert!(var >= -1e-9);
        }
    }
}

#[test]
fn quantiles_are_monotone_in_q() {
    let mut g = Gen::new(9);
    for _ in 0..CASES {
        let sample = finite_sample(&mut g, 1);
        let q1 = g.f64_in(0.0, 1.0);
        let q2 = g.f64_in(0.0, 1.0);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        assert!(quantile(&sample, lo).unwrap() <= quantile(&sample, hi).unwrap() + 1e-9);
    }
}

#[test]
fn median_is_between_min_and_max() {
    let mut g = Gen::new(10);
    for _ in 0..CASES {
        let sample = finite_sample(&mut g, 1);
        let m = median(&sample).unwrap();
        let min = sample.iter().cloned().fold(f64::MAX, f64::min);
        let max = sample.iter().cloned().fold(f64::MIN, f64::max);
        assert!(m >= min - 1e-9 && m <= max + 1e-9);
    }
}

#[test]
fn equi_width_histogram_conserves_mass() {
    let mut g = Gen::new(11);
    for _ in 0..CASES {
        let sample = g.sample(1, 200, -50.0, 150.0);
        let mut h = EquiWidthHistogram::new(0.0, 100.0, 10).unwrap();
        for &v in &sample {
            h.add(v);
        }
        let binned: u64 = h.counts().iter().sum();
        assert_eq!(binned + h.underflow() + h.overflow(), sample.len() as u64);
        assert_eq!(h.total(), sample.len() as u64);
    }
}

#[test]
fn equi_depth_selectivity_is_monotone() {
    let mut g = Gen::new(12);
    for _ in 0..CASES {
        let sample = finite_sample(&mut g, 2);
        let a = g.f64_in(-1.0e6, 1.0e6);
        let b = g.f64_in(-1.0e6, 1.0e6);
        let h = EquiDepthHistogram::build(&sample, 8).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(h.selectivity_le(lo) <= h.selectivity_le(hi) + 1e-9);
        let sel = h.selectivity_range(lo, hi);
        assert!((0.0..=1.0).contains(&sel));
    }
}
