//! Scenario-1 deep dive: step through the diagnosis workflow module by module, printing
//! the intermediate results the paper walks through in Section 5 (correlated operators,
//! dependency analysis scores for V1 vs V2, symptoms, confidence and impact).
//!
//! Run with `cargo run --release --example san_misconfiguration`.

use diads::core::{DiagnosisCache, DiagnosisContext, DiagnosisWorkflow, Testbed};
use diads::inject::scenarios::{scenario_1, ScenarioTimeline};
use diads::monitor::{ComponentId, MetricName};

fn main() {
    let scenario = scenario_1(ScenarioTimeline::short());
    let outcome = Testbed::run_scenario(&scenario);
    let apg = outcome.apg();
    let events = outcome.testbed.all_events();
    let ctx = DiagnosisContext {
        apg: &apg,
        history: &outcome.history,
        store: &outcome.testbed.store,
        events: &events,
        catalog: &outcome.testbed.catalog,
        config: &outcome.testbed.config,
        topology: outcome.testbed.san.topology(),
        workloads: outcome.testbed.san.workloads(),
    };
    let workflow = DiagnosisWorkflow::new();
    // One scoring cache threads through every module: each variable's satisfactory
    // history is fitted once across the whole drill-down.
    let mut cache = DiagnosisCache::new();

    println!("== Annotated Plan Graph ==\n{}", apg.render());

    let pd = workflow.plan_diffing(&ctx);
    println!("== Module PD ==\nsame plan: {}\n", pd.same_plan);

    let cos = workflow.correlated_operators(&ctx, &mut cache);
    println!("== Module CO == (threshold 0.8)");
    for (op, score) in &cos.scores {
        if *score >= 0.5 {
            println!(
                "  {op}: {score:.3}{}",
                if cos.correlated.contains(op) { "  <-- correlated" } else { "" }
            );
        }
    }

    let da = workflow.dependency_analysis(&ctx, &cos, &mut cache);
    println!("\n== Module DA == (write metrics of the two pools)");
    for (component, metric) in [
        (ComponentId::pool("P1"), MetricName::WriteIo),
        (ComponentId::pool("P1"), MetricName::WriteTime),
        (ComponentId::pool("P2"), MetricName::WriteIo),
        (ComponentId::pool("P2"), MetricName::WriteTime),
    ] {
        if let Some(score) = da.score_of(&component, &metric) {
            println!("  {component} {metric}: {score:.3}");
        }
    }
    println!(
        "  correlated components: {:?}",
        da.correlated_components.iter().map(|c| c.to_string()).collect::<Vec<_>>()
    );

    let cr = workflow.record_counts(&ctx, &cos, &mut cache);
    println!("\n== Module CR ==\nrecord-count changes: {:?}", cr.changed);

    let sd = workflow.symptoms(&ctx, &pd, &cos, &da, &cr);
    println!("\n== Module SD ==");
    for symptom in &sd.symptoms {
        println!("  symptom: {:?} — {}", symptom.kind, symptom.detail);
    }
    for cause in sd.causes.iter().take(4) {
        println!(
            "  cause: [{:<6}] {:>5.1}%  {}",
            cause.confidence.label(),
            cause.confidence_score,
            cause.cause_id
        );
    }

    let ia = workflow.impact_analysis(&ctx, &cos, &da, &cr, &sd);
    println!("\n== Module IA ==");
    for impact in &ia.impacts {
        println!("  {}: {:.1}% of the slowdown", impact.cause_id, impact.impact_pct);
    }
}
