//! Quick start: simulate the paper's scenario 1 (a SAN misconfiguration that creates
//! contention on volume V1) and let DIADS diagnose why the report query slowed down.
//!
//! Run with `cargo run --release --example quickstart`.

use diads::core::Testbed;
use diads::inject::scenarios::{scenario_1, ScenarioTimeline};

fn main() {
    // 1. Build the paper's testbed and run the fault-injection scenario: 12 satisfactory
    //    report runs, the misconfiguration, then 6 unsatisfactory runs — all monitored.
    let scenario = scenario_1(ScenarioTimeline::short());
    println!("Simulating: {}\n", scenario.name);
    let outcome = Testbed::run_scenario(&scenario);
    println!(
        "Collected {} runs ({} satisfactory / {} unsatisfactory), {} metric series, {} events.",
        outcome.history.len(),
        outcome.history.satisfactory().len(),
        outcome.history.unsatisfactory().len(),
        outcome.testbed.store.series_count(),
        outcome.testbed.all_events().len(),
    );
    println!(
        "Mean running time went from {:.0}s to {:.0}s.\n",
        outcome.history.mean_satisfactory_elapsed().unwrap_or(0.0),
        outcome.history.mean_unsatisfactory_elapsed().unwrap_or(0.0),
    );

    // 2. Diagnose: build the APG, run the workflow, print the report.
    let report = diads::diagnose_scenario_outcome(&outcome);
    println!("{}", report.render());

    let primary = report.primary_cause().expect("at least one cause is scored");
    println!(
        "\n==> Primary root cause: {} ({} confidence, {:.1}% of the slowdown)",
        primary.cause_id, primary.confidence, primary.impact_pct
    );
}
