//! Quick start: simulate the paper's scenario 1 (a SAN misconfiguration that creates
//! contention on volume V1) and let DIADS diagnose why the report query slowed down.
//!
//! Run with `cargo run --release --example quickstart`.

use diads::core::Testbed;
use diads::inject::scenarios::{scenario_1, ScenarioTimeline};

fn main() {
    // 1. Build the paper's testbed and run the fault-injection scenario: 12 satisfactory
    //    report runs, the misconfiguration, then 6 unsatisfactory runs — all monitored.
    let scenario = scenario_1(ScenarioTimeline::short());
    println!("Simulating: {}\n", scenario.name);
    let outcome = Testbed::run_scenario(&scenario);
    println!(
        "Collected {} runs ({} satisfactory / {} unsatisfactory), {} metric series, {} events.",
        outcome.history.len(),
        outcome.history.satisfactory().len(),
        outcome.history.unsatisfactory().len(),
        outcome.testbed.store.series_count(),
        outcome.testbed.all_events().len(),
    );
    println!(
        "Mean running time went from {:.0}s to {:.0}s.\n",
        outcome.history.mean_satisfactory_elapsed().unwrap_or(0.0),
        outcome.history.mean_unsatisfactory_elapsed().unwrap_or(0.0),
    );

    // 2. Diagnose: build the APG, run the standard diagnosis pipeline (PD → CO →
    //    DA → CR → SD → IA) through the testbed's engine, print the report.
    let report = diads::diagnose_scenario_outcome(&outcome);
    println!("{}", report.render());

    let primary = report.primary_cause().expect("at least one cause is scored");
    println!(
        "\n==> Primary root cause: {} ({} confidence, {:.1}% of the slowdown)",
        primary.cause_id, primary.confidence, primary.impact_pct
    );

    // 3. The report is machine-readable too: per-stage provenance (timings, cache
    //    hits, engine warm/cold) rides along with the findings.
    println!("\nStage trail:");
    for stage in &report.provenance.stages {
        println!(
            "  {:<3} {:>8.2}ms  (KDE fits: {} warm, {} fitted)",
            stage.stage,
            stage.elapsed_nanos as f64 / 1e6,
            stage.cache_hits,
            stage.cache_misses
        );
    }
    println!(
        "\nMachine-readable report: report.to_json() -> {} bytes of dependency-free JSON",
        report.to_json().len()
    );
}
