//! The interactive mode of Figures 3/6/7: browse the run history, look at the APG and a
//! component's metrics, then drive the diagnosis pipeline stage by stage — editing
//! module CO's result before the downstream stages consume it, exactly as the paper's
//! administrator-in-the-loop mode allows. The session is a thin driver over the same
//! [`DiagnosisPipeline`] batch diagnosis runs, so the finished report (and its stage
//! provenance) is identical to a batch run over the edited evidence.
//!
//! Run with `cargo run --release --example interactive_workflow`.

use diads::core::screens::{apg_visualization_screen, query_selection_screen, workflow_screen};
use diads::core::{DiagnosisContext, DiagnosisPipeline, DiagnosisWorkflow, Testbed, WorkflowSession};
use diads::db::OperatorId;
use diads::inject::scenarios::{scenario_1, ScenarioTimeline};
use diads::monitor::ComponentId;

fn main() {
    let scenario = scenario_1(ScenarioTimeline::short());
    let outcome = Testbed::run_scenario(&scenario);
    let apg = outcome.apg();
    let events = outcome.testbed.all_events();
    let ctx = DiagnosisContext {
        apg: &apg,
        history: &outcome.history,
        store: &outcome.testbed.store,
        events: &events,
        catalog: &outcome.testbed.catalog,
        config: &outcome.testbed.config,
        topology: outcome.testbed.san.topology(),
        workloads: outcome.testbed.san.workloads(),
    };

    // Figure 3: the administrator looks at the executions and their labels.
    println!("{}", query_selection_screen("TPC-H Q2", &outcome.history));

    // Figure 6: the APG with volume V1's metrics during the first unsatisfactory run.
    let window = outcome.history.unsatisfactory()[0].record.window();
    println!(
        "{}",
        apg_visualization_screen(&apg, &outcome.testbed.store, &ComponentId::volume("V1"), window)
    );

    // Figure 7: step through the standard pipeline interactively. The session owns
    // the evidence ledger; each run_* executes that stage (plus any unmet
    // prerequisites) against it.
    let mut session = WorkflowSession::new(DiagnosisWorkflow::new(), ctx);
    session.run_plan_diffing();
    session.run_correlated_operators();
    println!("{}", workflow_screen(&session));

    // The administrator trims the correlated-operator set down to the two partsupp
    // scans before letting dependency analysis run; downstream ledger slots are
    // invalidated and recomputed from the edit.
    session.edit_correlated_operators(vec![OperatorId(8), OperatorId(22)]);
    session.run_dependency_analysis();
    session.run_record_counts();
    session.run_symptoms();
    session.run_impact_analysis();
    println!("{}", workflow_screen(&session));

    let report = session.finish();
    println!("{}", report.render());

    // The same drill, recomposed: a SAN-only triage pipeline that skips Plan
    // Diffing and record counts entirely — one of the scenario shapes the
    // composable pipeline opens up. Stages the triage skips simply fall back to
    // empty evidence; the report stays well-formed.
    let triage = DiagnosisPipeline::standard()
        .skip(diads::core::Stage::PlanDiffing)
        .skip(diads::core::Stage::RecordCounts)
        .run(&ctx);
    println!(
        "SAN-only triage (stages {:?}) still ranks: {}",
        triage.provenance.stages.iter().map(|s| s.stage.as_str()).collect::<Vec<_>>(),
        triage.primary_cause().expect("ranked").cause_id
    );
}
