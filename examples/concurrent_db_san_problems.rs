//! Scenario 4: a data-property change inside the database *and* a SAN misconfiguration
//! hit the same report query at the same time. DIADS identifies both problems and uses
//! impact analysis to rank them — the capability the paper calls unique to an
//! integrated tool.
//!
//! Run with `cargo run --release --example concurrent_db_san_problems`.

use diads::core::{ConfidenceLevel, Testbed};
use diads::inject::scenarios::{scenario_4, scenario_5, ScenarioTimeline};

fn main() {
    let timeline = ScenarioTimeline::short();

    println!("=== Scenario 4: concurrent database and SAN problems ===\n");
    let scenario = scenario_4(timeline);
    let outcome = Testbed::run_scenario(&scenario);
    let report = diads::diagnose_scenario_outcome(&outcome);
    println!("{}", report.render());
    let high: Vec<_> = report.causes.iter().filter(|c| c.confidence == ConfidenceLevel::High).collect();
    println!("High-confidence causes found: {}", high.len());
    for cause in &high {
        println!("  {} — {:.1}% of the slowdown", cause.cause_id, cause.impact_pct);
    }

    println!("\n=== Scenario 5: locking problem plus spurious SAN symptoms from noise ===\n");
    let scenario = scenario_5(timeline);
    let outcome = Testbed::run_scenario(&scenario);
    let report = diads::diagnose_scenario_outcome(&outcome);
    println!("{}", report.render());
    println!(
        "Primary cause: {} (volume-contention causes, if any, carry little impact — the noise is filtered out)",
        report.primary_cause().map(|c| c.cause_id.clone()).unwrap_or_default()
    );
}
