//! Compound faults: database and SAN problems hitting the same report query at the
//! same time — the capability the paper calls unique to an integrated tool. DIADS
//! identifies both problems, impact analysis ranks them, and the remediation
//! planner (appended to the diagnosis pipeline as a custom stage) turns the report
//! into what-if-evaluated next steps.
//!
//! Run with `cargo run --release --example concurrent_db_san_problems`.

use diads::core::{
    ConfidenceLevel, DiagnosisContext, DiagnosisPipeline, Planner, PlannerStage, Stage, Testbed,
    WorkflowSession,
};
use diads::inject::scenarios::{
    compound_lock_and_interloper_scenario, scenario_4, scenario_5, ScenarioTimeline,
};

fn main() {
    let timeline = ScenarioTimeline::short();

    println!("=== Scenario 4: concurrent database and SAN problems ===\n");
    let scenario = scenario_4(timeline);
    let outcome = Testbed::run_scenario(&scenario);
    let report = diads::diagnose_scenario_outcome(&outcome);
    println!("{}", report.render());
    let high: Vec<_> = report.causes.iter().filter(|c| c.confidence == ConfidenceLevel::High).collect();
    println!("High-confidence causes found: {}", high.len());
    for cause in &high {
        println!("  {} — {:.1}% of the slowdown", cause.cause_id, cause.impact_pct);
    }

    println!("\n=== Scenario 5: locking problem plus spurious SAN symptoms from noise ===\n");
    let scenario = scenario_5(timeline);
    let outcome = Testbed::run_scenario(&scenario);
    let report = diads::diagnose_scenario_outcome(&outcome);
    println!("{}", report.render());
    println!(
        "Primary cause: {} (volume-contention causes, if any, carry little impact — the noise is filtered out)",
        report.primary_cause().map(|c| c.cause_id.clone()).unwrap_or_default()
    );

    // --- Compound scenario with independent onsets, planned end to end. ---
    println!("\n=== Compound: lock contention during SAN interloper load (staggered onsets) ===\n");
    let scenario = compound_lock_and_interloper_scenario(timeline);
    let outcome = Testbed::run_scenario(&scenario);
    let apg = outcome.apg();
    let events = outcome.testbed.all_events();
    let ctx = DiagnosisContext {
        apg: &apg,
        history: &outcome.history,
        store: &outcome.testbed.store,
        events: &events,
        catalog: &outcome.testbed.catalog,
        config: &outcome.testbed.config,
        topology: outcome.testbed.san.topology(),
        workloads: outcome.testbed.san.workloads(),
    };
    // The planner rides the pipeline as a custom stage appended after IA; the
    // session exposes its ledger slot.
    let stage = PlannerStage::new(Planner::for_outcome(&outcome), &outcome.testbed);
    let pipeline = DiagnosisPipeline::standard().insert_after(Stage::ImpactAnalysis, Box::new(stage));
    println!("Pipeline: {}\n", pipeline.stage_names().join(" -> "));
    let mut session = WorkflowSession::with_pipeline(pipeline, ctx);
    let report = session.finish();
    println!("{}", report.render());
    let plan = session.state().remediation.clone().expect("the PLAN stage filled the ledger slot");
    print!("{}", plan.render());
    println!(
        "\nBoth layers are guilty (the lock window opened two hours into the interloper load);\n\
         the planner's ranked changes address the SAN side — the lock holder is a running\n\
         transaction, not a deployment knob, so no what-if change claims to fix it."
    );
}
