//! Diagnosis-as-a-service: the continuous re-diagnosis loop over a small tenant
//! fleet, with a live subscriber on the typed event bus and a per-tenant
//! cancellation round-trip.
//!
//! The service owns one shared lock-striped engine and K tenant testbeds; each
//! cycle ingests a probe batch through the batched sharded writer, consults the
//! watermark policy, streams an incremental re-diagnosis through the bounded
//! event channel, derives remediation candidates, and re-seals. A subscriber
//! sees every tenant's `StageStarted`/`StageCompleted`/`CausesRanked`/
//! `RunCompleted` sequence as it happens; a cancelled tenant stops at its next
//! stage boundary and resumes losslessly.
//!
//! Run with `cargo run --release --example service_loop`.

use diads::inject::scenarios::{scenario_1, scenario_3, ScenarioTimeline};
use diads::service::{DiagnosisService, ServiceConfig, ServiceEvent};

fn main() {
    let timeline = ScenarioTimeline::short();
    let scenarios = vec![scenario_1(timeline), scenario_3(timeline)];

    println!("=== Building the service: {} tenants, one shared engine ===\n", scenarios.len());
    let service = DiagnosisService::new(&scenarios, ServiceConfig::default());

    // Subscribe before running: a bounded queue (publishes beyond its capacity
    // are dropped — counted — rather than ever stalling a diagnosis).
    let rx = service.hub().subscribe(4096);

    println!("=== Running 8 service cycles per tenant ===\n");
    service.run_cycles(8, 1);

    let events: Vec<ServiceEvent> = rx.try_iter().collect();
    println!("Observed {} events on the bus; the first diagnosed cycle of tenant 0:", events.len());
    let first_cycle = events.iter().find(|e| e.tenant == 0).map(|e| e.cycle);
    for e in events.iter().filter(|e| e.tenant == 0 && Some(e.cycle) == first_cycle) {
        println!("  [tenant {} cycle {}] {}", e.tenant, e.cycle, e.event.kind());
    }

    println!("\n=== Cancelling tenant 1, running 3 more cycles, resuming ===\n");
    service.cancel_tenant(1);
    service.run_cycles(3, 1);
    let cancelled = service.stats().cancelled_cycles;
    service.resume_tenant(1);
    service.run_cycles(1, 1);
    println!("Cancelled cycles while paused: {cancelled}");
    println!(
        "Tenant 1 report after resume covers the full store again: {} causes",
        service.last_report(1).map(|r| r.causes.len()).unwrap_or(0)
    );

    println!("\n=== Service stats snapshot ===\n{}", service.stats().to_json());
}
