//! The Section-7 what-if extension: after DIADS has diagnosed scenario 1, evaluate the
//! remediation options an administrator might consider — remove the interfering
//! workload, migrate the hot tablespace to the other pool, or shrink `work_mem` — and
//! predict their effect on the report query before touching the real systems.
//!
//! Run with `cargo run --release --example whatif_analysis`.

use diads::core::whatif::{evaluate, ProposedChange};
use diads::core::Testbed;
use diads::db::DbConfig;
use diads::inject::scenarios::{scenario_1, ScenarioTimeline};
use diads::monitor::Timestamp;

fn main() {
    let scenario = scenario_1(ScenarioTimeline::short());
    let outcome = Testbed::run_scenario(&scenario);
    let report = diads::diagnose_scenario_outcome(&outcome);
    println!(
        "Diagnosis: {} ({:.1}% of the slowdown)\n",
        report.primary_cause().map(|c| c.cause_id.clone()).unwrap_or_default(),
        report.primary_cause().map(|c| c.impact_pct).unwrap_or(0.0)
    );

    let at = Timestamp::new(scenario.timeline.end_time().as_secs() - 3_600);
    let interloper = outcome.testbed.san.workloads()[0].name.clone();
    let changes = vec![
        ProposedChange::RemoveExternalWorkload { workload: interloper },
        ProposedChange::MoveTablespace { tablespace: "ts_partsupp".into(), to_volume: "V2".into() },
        ProposedChange::ChangeConfig {
            new_config: DbConfig::paper_default().with_work_mem_kb(512),
            description: "shrink work_mem to 512kB".into(),
        },
        ProposedChange::DropIndex { index: "part_type_size_idx".into() },
    ];

    println!("{:<55} {:>12} {:>12} {:>12}", "Proposed change", "baseline", "predicted", "improvement");
    for change in &changes {
        match evaluate(&outcome.testbed, change, at) {
            Ok(result) => println!(
                "{:<55} {:>10.0}s {:>10.0}s {:>11.1}%",
                result.change,
                result.baseline_secs,
                result.predicted_secs,
                result.improvement() * 100.0
            ),
            Err(e) => println!("{change:?}: evaluation failed: {e}"),
        }
    }
    println!("\nThe impact-analysis machinery predicts that removing the interloper (or moving the");
    println!("partsupp tablespace off the contended pool) recovers the slowdown, while the");
    println!("database-side knobs the silo tools would suggest change little.");
}
