//! The Section-7 what-if extension: after DIADS has diagnosed scenario 1, evaluate the
//! remediation options an administrator might consider — remove the interfering
//! workload, migrate the hot tablespace to the other pool, or shrink `work_mem` — and
//! predict their effect on the report query before touching the real systems. Then let
//! the [`Planner`] do the same end to end: derive the candidates *from the diagnosis
//! report itself*, evaluate each against a fork of the deployment, and rank them.
//!
//! Run with `cargo run --release --example whatif_analysis`.

use diads::core::whatif::{evaluate, ProposedChange};
use diads::core::{Planner, Testbed};
use diads::db::DbConfig;
use diads::inject::scenarios::{scenario_1, ScenarioTimeline};

fn main() {
    let timeline = ScenarioTimeline::short();
    let scenario = scenario_1(timeline);
    let outcome = Testbed::run_scenario(&scenario);
    let report = diads::diagnose_scenario_outcome(&outcome);
    println!(
        "Diagnosis: {} ({:.1}% of the slowdown)\n",
        report.primary_cause().map(|c| c.cause_id.clone()).unwrap_or_default(),
        report.primary_cause().map(|c| c.impact_pct).unwrap_or(0.0)
    );

    // --- Manual what-if: the administrator proposes, DIADS predicts. ---
    let at = timeline.last_run_start();
    let interloper = outcome.testbed.san.workloads()[0].name.clone();
    let changes = vec![
        ProposedChange::RemoveExternalWorkload { workload: interloper },
        ProposedChange::MoveTablespace { tablespace: "ts_partsupp".into(), to_volume: "V2".into() },
        ProposedChange::ChangeConfig {
            new_config: DbConfig::paper_default().with_work_mem_kb(512),
            description: "shrink work_mem to 512kB".into(),
        },
        ProposedChange::DropIndex { index: "part_type_size_idx".into() },
    ];

    println!("{:<55} {:>12} {:>12} {:>12}", "Proposed change", "baseline", "predicted", "improvement");
    for change in &changes {
        match evaluate(&outcome.testbed, change, at) {
            Ok(result) => println!(
                "{:<55} {:>10.0}s {:>10.0}s {:>11.1}%",
                result.change,
                result.baseline_secs,
                result.predicted_secs,
                result.improvement() * 100.0
            ),
            Err(e) => println!("{change:?}: evaluation failed: {e}"),
        }
    }

    // A change naming an unknown component is an error, never a silent ~0% no-op.
    let bogus = ProposedChange::RemoveExternalWorkload { workload: "not-a-workload".into() };
    println!("\nUnknown names fail loudly: {:?}", evaluate(&outcome.testbed, &bogus, at).unwrap_err());

    // --- The remediation planner: candidates derived from the report itself. ---
    let planner = Planner::for_outcome(&outcome);
    let plan = planner.plan(&report, &outcome.testbed);
    println!();
    print!("{}", plan.render());

    println!("\nThe impact-analysis machinery predicts that removing the interloper (or moving the");
    println!("partsupp tablespace off the contended pool) recovers the slowdown, while the");
    println!("database-side knobs the silo tools would suggest change little — and the planner");
    println!("reaches the same ranking automatically from the diagnosis report.");
}
